//! # esyn-extract — the extraction gym
//!
//! One [`Extractor`] trait, one shared validator, and a family of
//! DAG-cost extraction engines over a dense e-graph snapshot, in the
//! spirit of the extraction-gym benchmark suite. Every engine is a pure
//! function of `(graph, roots, costs)`:
//!
//! | name                | strategy                                        |
//! |---------------------|-------------------------------------------------|
//! | `bottom-up`         | tree-cost fixpoint by full sweeps (baseline)    |
//! | `faster-bottom-up`  | tree-cost fixpoint on a parent worklist         |
//! | `greedy-dag`        | greedy sub-DAG bitsets, full sweeps             |
//! | `faster-greedy-dag` | greedy sub-DAG bitsets, parent worklist         |
//! | `global-greedy-dag` | TermDag-style exact sharing-aware greedy        |
//! | `bnb`               | branch-and-bound, greedy incumbent, step budget |
//! | `exact`             | SAT descent over `esyn-sat`, greedy portfolio   |
//!
//! The heuristics run in linear-ish time and can miss coordination
//! between siblings; `bnb` and `exact` close that gap under a budget and
//! are seeded with greedy incumbents, so their answers are never worse
//! than greedy. All engines return an [`ExtractionResult`] whose
//! [`check`](ExtractionResult::check) enforces the gym contract — roots
//! covered, selection closed, acyclic — and costs are scored under a
//! pluggable [`CostModel`] via a shared, optionally parallel
//! [`CostTable`].
//!
//! [`gym::race`] runs a set of engines on one e-graph and tabulates
//! QoR/time; [`extract_best`] is the one-engine convenience used by the
//! pool; [`extract_exact`] keeps the original hard-error contract of
//! `esyn_egraph::extract_exact` for callers that need the optimality
//! claim.

mod bnb;
mod bottom_up;
mod exact;
mod global_greedy_dag;
mod graph;
mod greedy_dag;
pub mod gym;
mod result;

pub use bnb::{BranchBound, ExactExtractError};
pub use bottom_up::{BottomUp, FasterBottomUp};
pub use exact::SatExact;
pub use global_greedy_dag::GlobalGreedyDag;
pub use graph::{CostModel, CostTable, ENode, ExtractGraph, UnitCost};
pub use greedy_dag::{FasterGreedyDag, GreedyDag};
pub use gym::{race, GymRow};
pub use result::{CheckError, ExtractionResult};

use esyn_egraph::{Analysis, EGraph, Id, Language, RecExpr};
use esyn_par::Parallelism;

/// An extraction engine: pick one e-node per (relevant) e-class.
///
/// Engines are stateless values (configuration only), `Sync` so races can
/// share them across threads, and deterministic: the same inputs always
/// produce the same choices. Results are *not* trusted — run
/// [`ExtractionResult::check`] before using one.
pub trait Extractor<L: Language>: Sync {
    /// Extracts from `graph` at `roots` (dense indices, deduplicated)
    /// scoring e-nodes by `costs`.
    fn extract(
        &self,
        graph: &ExtractGraph<L>,
        roots: &[usize],
        costs: &CostTable,
    ) -> ExtractionResult;
}

/// Canonical names of every engine in the gym, registry order.
///
/// This is the single source of truth for engine selection: the CLI's
/// `--extractor` flag, `esyn gym`, the pool's DAG-extreme knob and the
/// benches all resolve names through [`engine_by_name`].
pub const ENGINE_NAMES: [&str; 7] = [
    "bottom-up",
    "faster-bottom-up",
    "greedy-dag",
    "faster-greedy-dag",
    "global-greedy-dag",
    "bnb",
    "exact",
];

/// Normalizes `name` to its canonical registry spelling (underscores are
/// accepted for dashes, so extraction-gym spellings like `bottom_up`
/// work). `None` for unknown engines.
pub fn canonical_engine_name(name: &str) -> Option<&'static str> {
    let name = name.replace('_', "-");
    ENGINE_NAMES.iter().copied().find(|&n| n == name)
}

/// Instantiates the engine registered under `name` (canonical or
/// underscore spelling) with its default configuration.
pub fn engine_by_name<L: Language>(name: &str) -> Option<(&'static str, Box<dyn Extractor<L>>)> {
    let canonical = canonical_engine_name(name)?;
    let engine: Box<dyn Extractor<L>> = match canonical {
        "bottom-up" => Box::new(BottomUp),
        "faster-bottom-up" => Box::new(FasterBottomUp),
        "greedy-dag" => Box::new(GreedyDag),
        "faster-greedy-dag" => Box::new(FasterGreedyDag),
        "global-greedy-dag" => Box::new(GlobalGreedyDag),
        "bnb" => Box::new(BranchBound::default()),
        "exact" => Box::new(SatExact::default()),
        _ => unreachable!("canonical_engine_name returned a non-registry name"),
    };
    Some((canonical, engine))
}

/// Runs one engine on `egraph` at `root` and materializes the result:
/// `(DAG cost, extracted term)`, or `None` when the root has no
/// extractable term (malformed or mid-rebuild e-graph).
///
/// The cost table is built serially — this is the single-extraction
/// convenience path (the pool, the CLI); races build their table once
/// with explicit parallelism via [`gym::race`].
pub fn extract_best<L, N>(
    engine: &dyn Extractor<L>,
    egraph: &EGraph<L, N>,
    root: Id,
    model: &dyn CostModel<L>,
) -> Option<(f64, RecExpr<L>)>
where
    L: Language + Sync,
    N: Analysis<L>,
{
    let graph = ExtractGraph::new(egraph);
    let costs = CostTable::build(&graph, model, Parallelism::Serial);
    let roots = graph.root_indices(egraph, &[root]);
    let result = engine.extract(&graph, &roots, &costs);
    result.check(&graph, &roots).ok()?;
    let cost = result.dag_cost(&graph, &costs, &roots);
    Some((cost, result.term(&graph, roots[0])))
}

/// Provably optimal DAG-cost extraction by branch-and-bound, with the
/// original `esyn_egraph::extract_exact` contract: unlike the `bnb` gym
/// engine (which settles for its incumbent), this errors with
/// [`ExactExtractError::Budget`] when `max_steps` runs out before the
/// search space is exhausted, so an `Ok` is an optimality certificate.
pub fn extract_exact<L, N>(
    egraph: &EGraph<L, N>,
    root: Id,
    model: &dyn CostModel<L>,
    max_steps: u64,
) -> Result<(f64, RecExpr<L>), ExactExtractError>
where
    L: Language + Sync,
    N: Analysis<L>,
{
    let graph = ExtractGraph::new(egraph);
    let costs = CostTable::build(&graph, model, Parallelism::Serial);
    let roots = graph.root_indices(egraph, &[root]);
    let greedy = GreedyDag.extract(&graph, &roots, &costs);
    if greedy.check(&graph, &roots).is_err() {
        return Err(ExactExtractError::NoTerm);
    }
    let incumbent_cost = greedy.dag_cost(&graph, &costs, &roots);
    let outcome = BranchBound { max_steps }.search(&graph, &roots, &costs, incumbent_cost);
    if outcome.exhausted {
        return Err(ExactExtractError::Budget(max_steps));
    }
    let result = match outcome.improved {
        Some(choices) => ExtractionResult { choices },
        None => greedy,
    };
    let cost = result.dag_cost(&graph, &costs, &roots);
    Ok((cost, result.term(&graph, roots[0])))
}
