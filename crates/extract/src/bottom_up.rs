//! The tree-cost baseline engines (`bottom-up`, `faster-bottom-up`).
//!
//! Both select, per class, the e-node minimizing *tree* cost (children
//! charged per reference) and let the shared finisher ground the result.
//! Under the gym's DAG-cost scoring they are the deliberately naive
//! baseline: fast, cycle-free by construction, but blind to sharing —
//! exactly the role `bottom_up` / `faster_bottom_up` play in the
//! extraction-gym suite this crate ports.

use crate::graph::{CostTable, ExtractGraph};
use crate::result::{complete_selection, ExtractionResult, EPS};
use crate::Extractor;
use esyn_egraph::Language;
use std::collections::VecDeque;

/// Tree-cost saturation to fixpoint by repeated full sweeps over the
/// classes — the simplest possible engine, kept as the reference point.
#[derive(Clone, Copy, Debug, Default)]
pub struct BottomUp;

/// Tree costs can overflow `f64` on sharing-heavy e-graphs (a chain of k
/// binary reuses doubles the cost k times); saturate instead so the
/// comparison logic keeps working.
const TREE_CAP: f64 = 1e300;

fn tree_cost_of(
    graph: &ExtractGraph<impl Language>,
    costs: &CostTable,
    best: &[f64],
    ci: usize,
    k: usize,
) -> f64 {
    let mut c = costs.cost(ci, k);
    for &d in graph.nodes(ci)[k].children() {
        c += best[d];
    }
    c.min(TREE_CAP)
}

impl<L: Language> Extractor<L> for BottomUp {
    fn extract(
        &self,
        graph: &ExtractGraph<L>,
        roots: &[usize],
        costs: &CostTable,
    ) -> ExtractionResult {
        let n = graph.num_classes();
        let mut best = vec![f64::INFINITY; n];
        let mut choice: Vec<Option<usize>> = vec![None; n];
        let mut changed = true;
        while changed {
            changed = false;
            for ci in 0..n {
                for k in 0..graph.nodes(ci).len() {
                    let c = tree_cost_of(graph, costs, &best, ci, k);
                    if c.is_finite() && c + EPS < best[ci] {
                        best[ci] = c;
                        choice[ci] = Some(k);
                        changed = true;
                    }
                }
            }
        }
        complete_selection(graph, costs, &choice, roots)
    }
}

/// [`BottomUp`] driven by a parent worklist instead of full sweeps: a
/// class is re-evaluated only when one of its children improved. Same
/// selections, asymptotically less work on sparse graphs.
#[derive(Clone, Copy, Debug, Default)]
pub struct FasterBottomUp;

impl<L: Language> Extractor<L> for FasterBottomUp {
    fn extract(
        &self,
        graph: &ExtractGraph<L>,
        roots: &[usize],
        costs: &CostTable,
    ) -> ExtractionResult {
        let n = graph.num_classes();
        let mut best = vec![f64::INFINITY; n];
        let mut choice: Vec<Option<usize>> = vec![None; n];
        let mut queue: VecDeque<usize> = (0..n).collect();
        let mut in_queue = vec![true; n];
        while let Some(ci) = queue.pop_front() {
            in_queue[ci] = false;
            let mut improved = false;
            for k in 0..graph.nodes(ci).len() {
                let c = tree_cost_of(graph, costs, &best, ci, k);
                if c.is_finite() && c + EPS < best[ci] {
                    best[ci] = c;
                    choice[ci] = Some(k);
                    improved = true;
                }
            }
            if improved {
                for &(p, _) in graph.parents(ci) {
                    if !in_queue[p] {
                        in_queue[p] = true;
                        queue.push_back(p);
                    }
                }
            }
        }
        complete_selection(graph, costs, &choice, roots)
    }
}
