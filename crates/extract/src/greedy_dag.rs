//! The greedy sub-DAG engines (`greedy-dag`, `faster-greedy-dag`).
//!
//! Every class tracks its cheapest known *sub-DAG* — a set of classes
//! plus one chosen e-node per member — as a dense bitset. A candidate
//! e-node's cost is its own cost plus the chosen cost of every class in
//! the union of its children's sub-DAGs (each class once). Both engines
//! are heuristics: they can miss selections where siblings profit from
//! coordinating on a shared child (the `exact` engine exists for that),
//! but they never over-count sharing the way tree cost does.
//!
//! `greedy-dag` re-sweeps every class until nothing anywhere improves —
//! the port of the workspace's original `DagExtractor`. `faster-greedy-dag`
//! replaces the full sweeps with a parent worklist; it re-evaluates a
//! class only when a direct child improved, so stale *indirect* set
//! members are not chased to the same fixpoint. The two can disagree
//! slightly (either way), which is exactly the greedy_dag /
//! faster_greedy_dag split in the extraction-gym suite.

use crate::graph::{BitSet, CostTable, ExtractGraph};
use crate::result::{complete_selection, ExtractionResult, EPS};
use crate::Extractor;
use esyn_egraph::Language;
use std::collections::VecDeque;

/// State per class: chosen candidate, its sub-DAG, its estimated cost.
type Best = Option<(usize, BitSet, f64)>;

/// Evaluates candidate `k` of `ci` against the current per-class
/// solutions; `None` when a child is unsolved or the candidate would
/// close a cycle through `ci`.
fn candidate(
    graph: &ExtractGraph<impl Language>,
    costs: &CostTable,
    best: &[Best],
    chosen_cost: &[f64],
    ci: usize,
    k: usize,
) -> Option<(BitSet, f64)> {
    let children = graph.nodes(ci)[k].children();
    let ok = children.iter().all(|&d| {
        best[d]
            .as_ref()
            .is_some_and(|(_, set, _)| !set.contains(ci))
    });
    if !ok {
        return None;
    }
    let mut set = BitSet::new(graph.num_classes());
    for &d in children {
        set.union_with(&best[d].as_ref().unwrap().1);
    }
    set.insert(ci);
    let mut cost = costs.cost(ci, k);
    for d in set.iter() {
        if d != ci {
            cost += chosen_cost[d];
        }
    }
    Some((set, cost))
}

fn finish<L: Language>(
    graph: &ExtractGraph<L>,
    costs: &CostTable,
    best: Vec<Best>,
    roots: &[usize],
) -> ExtractionResult {
    let prefer: Vec<Option<usize>> = best.into_iter().map(|b| b.map(|(k, _, _)| k)).collect();
    complete_selection(graph, costs, &prefer, roots)
}

/// Greedy sub-DAG fixpoint by full sweeps (the original `DagExtractor`).
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyDag;

impl<L: Language> Extractor<L> for GreedyDag {
    fn extract(
        &self,
        graph: &ExtractGraph<L>,
        roots: &[usize],
        costs: &CostTable,
    ) -> ExtractionResult {
        let n = graph.num_classes();
        let mut best: Vec<Best> = vec![None; n];
        // Cost of the currently chosen node per class, used when summing a
        // candidate set's cost. Members of a stale set are charged their
        // *current* chosen cost; the fixpoint stays a heuristic either way
        // and the finisher grounds whatever it produced.
        let mut chosen_cost = vec![0.0f64; n];
        let mut changed = true;
        while changed {
            changed = false;
            for ci in 0..n {
                for k in 0..graph.nodes(ci).len() {
                    let Some((set, cost)) = candidate(graph, costs, &best, &chosen_cost, ci, k)
                    else {
                        continue;
                    };
                    let better = match &best[ci] {
                        Some((_, _, old)) => cost + EPS < *old,
                        None => true,
                    };
                    if better {
                        chosen_cost[ci] = costs.cost(ci, k);
                        best[ci] = Some((k, set, cost));
                        changed = true;
                    }
                }
            }
        }
        finish(graph, costs, best, roots)
    }
}

/// Greedy sub-DAG fixpoint driven by a parent worklist.
#[derive(Clone, Copy, Debug, Default)]
pub struct FasterGreedyDag;

impl<L: Language> Extractor<L> for FasterGreedyDag {
    fn extract(
        &self,
        graph: &ExtractGraph<L>,
        roots: &[usize],
        costs: &CostTable,
    ) -> ExtractionResult {
        let n = graph.num_classes();
        let mut best: Vec<Best> = vec![None; n];
        let mut chosen_cost = vec![0.0f64; n];
        let mut queue: VecDeque<usize> = (0..n).collect();
        let mut in_queue = vec![true; n];
        while let Some(ci) = queue.pop_front() {
            in_queue[ci] = false;
            // Evaluate every candidate against one consistent snapshot and
            // keep the cheapest (ties to the lowest index).
            let mut pick: Option<(usize, BitSet, f64)> = None;
            for k in 0..graph.nodes(ci).len() {
                let Some((set, cost)) = candidate(graph, costs, &best, &chosen_cost, ci, k) else {
                    continue;
                };
                if pick.as_ref().is_none_or(|(_, _, pc)| cost + EPS < *pc) {
                    pick = Some((k, set, cost));
                }
            }
            let Some((k, set, cost)) = pick else { continue };
            let improved = match &best[ci] {
                Some((_, _, old)) => cost + EPS < *old,
                None => true,
            };
            if improved {
                chosen_cost[ci] = costs.cost(ci, k);
                best[ci] = Some((k, set, cost));
                for &(p, _) in graph.parents(ci) {
                    if !in_queue[p] {
                        in_queue[p] = true;
                        queue.push_back(p);
                    }
                }
            }
        }
        finish(graph, costs, best, roots)
    }
}
