//! The gym contract, engine by engine: every extraction passes the shared
//! validator, exact engines lower-bound the greedy family, and reported
//! costs always match the materialized terms. Ports the former
//! `esyn_egraph::dag_extract` tests onto the `esyn-extract` API and adds
//! whole-registry property sweeps in the workspace's seeded-loop style.

use esyn_egraph::{AstSize, EGraph, Extractor as TreeExtractor, Id, Language, RecExpr, SymbolLang};
use esyn_extract::{
    canonical_engine_name, engine_by_name, extract_best, extract_exact, gym, BranchBound,
    CostTable, ExactExtractError, ExtractGraph, GreedyDag, SatExact, UnitCost, ENGINE_NAMES,
};
use esyn_par::Parallelism;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dag_cost_of_expr(expr: &RecExpr<SymbolLang>) -> f64 {
    expr.as_ref().len() as f64
}

#[test]
fn registry_names_resolve_and_normalize() {
    for name in ENGINE_NAMES {
        let (canonical, _) = engine_by_name::<SymbolLang>(name).unwrap();
        assert_eq!(canonical, name);
        // Extraction-gym spellings (underscores) are accepted.
        let gym_spelling = name.replace('-', "_");
        assert_eq!(canonical_engine_name(&gym_spelling), Some(name));
    }
    assert_eq!(canonical_engine_name("ilp-cbc"), None);
    assert!(engine_by_name::<SymbolLang>("no-such-engine").is_none());
}

#[test]
fn agrees_with_tree_extractor_on_trees() {
    let mut g = EGraph::<SymbolLang>::new();
    let e: RecExpr<SymbolLang> = "(+ (* a b) c)".parse().unwrap();
    let id = g.add_expr(&e);
    g.rebuild();
    let (dcost, dbest) = extract_best(&GreedyDag, &g, id, &UnitCost).unwrap();
    let tree = TreeExtractor::new(&g, AstSize);
    let (tcost, tbest) = tree.find_best(id).unwrap();
    assert_eq!(dcost, tcost as f64);
    assert_eq!(dbest.to_string(), tbest.to_string());
}

#[test]
fn charges_shared_subterm_once() {
    let mut g = EGraph::<SymbolLang>::new();
    let e: RecExpr<SymbolLang> = "(* (+ x y) (+ x y))".parse().unwrap();
    let id = g.add_expr(&e);
    g.rebuild();
    let (cost, best) = extract_best(&GreedyDag, &g, id, &UnitCost).unwrap();
    // x, y, +, * — the shared (+ x y) counts once.
    assert_eq!(cost, 4.0);
    assert_eq!(best.len(), 4);
    // The tree extractor reports 7 for the same term.
    let tree = TreeExtractor::new(&g, AstSize);
    assert_eq!(tree.cost_of(id), Some(7));
}

#[test]
fn dag_engines_prefer_sharing_over_tree_choice() {
    // Root can be (f s s) with an expensive shared child, or
    // (g a b c d e) with five cheap distinct children. Tree cost
    // double-counts s and prefers g; DAG cost charges s once and
    // prefers f.
    let mut g = EGraph::<SymbolLang>::new();
    let shared: RecExpr<SymbolLang> = "(f (pack p q r) (pack p q r))".parse().unwrap();
    let wide: RecExpr<SymbolLang> = "(g a b c d e)".parse().unwrap();
    let x = g.add_expr(&shared);
    let y = g.add_expr(&wide);
    g.union(x, y);
    g.rebuild();

    let tree = TreeExtractor::new(&g, AstSize);
    let (_, tbest) = tree.find_best(x).unwrap();
    assert_eq!(tbest.node(tbest.root()).op_str(), "g"); // 6 < 9 tree-wise

    for engine in [
        "greedy-dag",
        "faster-greedy-dag",
        "global-greedy-dag",
        "bnb",
        "exact",
    ] {
        let (_, engine_box) = engine_by_name::<SymbolLang>(engine).unwrap();
        let (dcost, dbest) = extract_best(engine_box.as_ref(), &g, x, &UnitCost).unwrap();
        assert_eq!(dbest.node(dbest.root()).op_str(), "f", "{engine}"); // 5 < 6 dag-wise
        assert_eq!(dcost, 5.0, "{engine}"); // f, pack, p, q, r
    }
    // The tree-cost baselines pick g — that is their documented blindness.
    let (bcost, bbest) = extract_best(&esyn_extract::BottomUp, &g, x, &UnitCost).unwrap();
    assert_eq!(bbest.node(bbest.root()).op_str(), "g");
    assert_eq!(bcost, 6.0);
}

/// Builds the classic instance where per-class greedy misses the
/// globally shared choice: A and B can each use the shared class C
/// (cost 5) or private leaves (cost 3 each). Locally the private leaf
/// wins; globally sharing C wins.
fn coordination_trap() -> (EGraph<SymbolLang>, Id) {
    let mut g = EGraph::<SymbolLang>::new();
    let a1: RecExpr<SymbolLang> = "(f c5)".parse().unwrap();
    let a2: RecExpr<SymbolLang> = "(g d3)".parse().unwrap();
    let b1: RecExpr<SymbolLang> = "(p c5)".parse().unwrap();
    let b2: RecExpr<SymbolLang> = "(q e3)".parse().unwrap();
    let ia1 = g.add_expr(&a1);
    let ia2 = g.add_expr(&a2);
    let ib1 = g.add_expr(&b1);
    let ib2 = g.add_expr(&b2);
    g.union(ia1, ia2);
    g.union(ib1, ib2);
    let root = g.add(SymbolLang::new("r", vec![ia1, ib1]));
    g.rebuild();
    (g, root)
}

fn trap_cost(node: &SymbolLang) -> f64 {
    match node.op_str() {
        "c5" => 5.0,
        "d3" | "e3" => 3.0,
        _ => 1.0,
    }
}

#[test]
fn exact_engines_beat_greedy_on_coordination_trap() {
    let (g, root) = coordination_trap();
    let (greedy_cost, _) = extract_best(&GreedyDag, &g, root, &trap_cost).unwrap();
    // Greedy: A picks (g d3)=4, B picks (q e3)=4, root r=1 → 9.
    assert_eq!(greedy_cost, 9.0);

    let (exact_cost, best) = extract_exact(&g, root, &trap_cost, 1 << 20).unwrap();
    // Exact: share c5: r + f + p + c5 = 1+1+1+5 = 8.
    assert_eq!(exact_cost, 8.0);
    assert!(exact_cost < greedy_cost);
    let ops: Vec<&str> = best.as_ref().iter().map(|n| n.op_str()).collect();
    assert!(ops.contains(&"c5"));
    assert!(!ops.contains(&"d3"));

    // Both gym engines (budgeted, incumbent-returning) find the same
    // optimum here — the instance is tiny.
    for engine in ["bnb", "exact"] {
        let (_, engine_box) = engine_by_name::<SymbolLang>(engine).unwrap();
        let (cost, _) = extract_best(engine_box.as_ref(), &g, root, &trap_cost).unwrap();
        assert_eq!(cost, 8.0, "{engine}");
    }
}

#[test]
fn exact_matches_greedy_on_trees() {
    let mut g = EGraph::<SymbolLang>::new();
    let e: RecExpr<SymbolLang> = "(+ (* a b) (* a b))".parse().unwrap();
    let id = g.add_expr(&e);
    g.rebuild();
    let (gc, _) = extract_best(&GreedyDag, &g, id, &UnitCost).unwrap();
    let (ec, _) = extract_exact(&g, id, &UnitCost, 1 << 20).unwrap();
    assert_eq!(gc, ec);
    assert_eq!(ec, 4.0);
}

#[test]
fn cyclic_class_extracts_leaf_in_every_engine() {
    let mut g = EGraph::<SymbolLang>::new();
    let x = g.add(SymbolLang::leaf("x"));
    let fx = g.add(SymbolLang::new("f", vec![x]));
    g.union(x, fx);
    g.rebuild();
    for name in ENGINE_NAMES {
        let (_, engine) = engine_by_name::<SymbolLang>(name).unwrap();
        let (cost, best) = extract_best(engine.as_ref(), &g, fx, &UnitCost).unwrap();
        assert_eq!(cost, 1.0, "{name}");
        assert_eq!(best.to_string(), "x", "{name}");
    }
    let (ecost, ebest) = extract_exact(&g, fx, &UnitCost, 1 << 20).unwrap();
    assert_eq!(ecost, 1.0);
    assert_eq!(ebest.to_string(), "x");
}

#[test]
fn budget_exhaustion_reports_error() {
    let (g, root) = coordination_trap();
    let res = extract_exact(&g, root, &trap_cost, 0);
    assert_eq!(res, Err(ExactExtractError::Budget(0)));
    assert!(res.unwrap_err().to_string().contains("budget"));
    // The gym `bnb` engine instead settles for its greedy incumbent.
    let (cost, _) = extract_best(&BranchBound { max_steps: 0 }, &g, root, &trap_cost).unwrap();
    assert_eq!(cost, 9.0);
}

#[test]
fn zero_conflict_exact_returns_greedy_incumbent() {
    let (g, root) = coordination_trap();
    let starved = SatExact {
        conflict_budget: 0,
        adaptive: false, // pin the explicit zero budget
        ..SatExact::default()
    };
    let (cost, _) = extract_best(&starved, &g, root, &trap_cost).unwrap();
    // The portfolio incumbent is still valid — never worse than greedy.
    assert!(cost <= 9.0 + 1e-9);
}

#[test]
fn adaptive_budgets_scale_with_graph_size_and_small_graphs_still_prove() {
    let e = SatExact::default();
    assert!(e.adaptive, "adaptive scaling is the default");
    // Reference point: the old fixed defaults at ~10 k e-nodes.
    assert_eq!(e.budgets(10_000), (20_000, 400_000));
    // Clamped extremes: small graphs scale up to a full proof, huge
    // ones down to a quick incumbent check.
    assert_eq!(e.budgets(100), (200_000, 4_000_000));
    assert_eq!(e.budgets(1_000_000), (2_000, 40_000));
    let (c_small, l_small) = e.budgets(500);
    let (c_big, l_big) = e.budgets(50_000);
    assert!(
        c_small > c_big && l_small > l_big,
        "budgets must be monotone"
    );
    // Non-adaptive extractors pin their explicit fields verbatim.
    let pinned = SatExact {
        adaptive: false,
        ..SatExact::default()
    };
    assert_eq!(pinned.budgets(5), (20_000, 400_000));

    // Regression: on a small instance the adaptive default still proves
    // optimality — it matches the BnB certificate, not just the greedy
    // incumbent (which scores 9.0 on the trap).
    let (g, root) = coordination_trap();
    let (opt, _) = extract_exact(&g, root, &trap_cost, 1 << 22).unwrap();
    let (sat, _) = extract_best(&SatExact::default(), &g, root, &trap_cost).unwrap();
    assert!(
        (sat - opt).abs() < 1e-9,
        "adaptive SatExact found {sat}, certified optimum is {opt}"
    );
    assert!(
        opt < 9.0,
        "the trap's optimum must beat the greedy incumbent"
    );
}

#[test]
fn reported_cost_matches_materialized_expr() {
    let (g, root) = coordination_trap();
    for name in ENGINE_NAMES {
        let (_, engine) = engine_by_name::<SymbolLang>(name).unwrap();
        let (cost, best) = extract_best(engine.as_ref(), &g, root, &UnitCost).unwrap();
        assert_eq!(cost, dag_cost_of_expr(&best), "{name}");
    }
}

#[test]
fn race_covers_every_engine_and_validates() {
    let (g, root) = coordination_trap();
    let rows = gym::race(&g, &[root], &trap_cost, &ENGINE_NAMES, Parallelism::Serial);
    assert_eq!(rows.len(), ENGINE_NAMES.len());
    for (row, name) in rows.iter().zip(ENGINE_NAMES) {
        assert_eq!(row.engine, name);
        assert!(row.check.is_ok(), "{name}: {:?}", row.check);
        assert!(row.dag_cost.is_finite(), "{name}");
        assert!(row.tree_cost + 1e-9 >= row.dag_cost, "{name}");
    }
    let best_greedy = rows[..5]
        .iter()
        .map(|r| r.dag_cost)
        .fold(f64::INFINITY, f64::min);
    assert_eq!(rows[5].dag_cost, 8.0); // bnb
    assert_eq!(rows[6].dag_cost, 8.0); // exact
    assert!(best_greedy >= 8.0);
}

/// Appends a small random expression over a fixed op alphabet to `e`,
/// returning its root; depth-bounded like the seed's
/// `prop_recursive(3, …)` strategy.
fn random_subexpr(rng: &mut StdRng, e: &mut RecExpr<SymbolLang>, depth: usize) -> Id {
    if depth == 0 || rng.gen_bool(0.3) {
        let name = ["a", "b", "c"][rng.gen_range(0usize..3)];
        e.add(SymbolLang::leaf(name))
    } else {
        let l = random_subexpr(rng, e, depth - 1);
        let r = random_subexpr(rng, e, depth - 1);
        let op = if rng.gen_bool(0.5) { "+" } else { "*" };
        e.add(SymbolLang::new(op, vec![l, r]))
    }
}

/// A random multi-node e-graph: two unioned random expressions plus a few
/// extra random unions (semantics irrelevant for cost-ordering checks).
fn random_egraph(rng: &mut StdRng) -> (EGraph<SymbolLang>, Id) {
    let mut e1 = RecExpr::new();
    random_subexpr(rng, &mut e1, 3);
    let mut e2 = RecExpr::new();
    random_subexpr(rng, &mut e2, 3);
    let mut g = EGraph::<SymbolLang>::new();
    let r1 = g.add_expr(&e1);
    let r2 = g.add_expr(&e2);
    g.union(r1, r2);
    let ids: Vec<Id> = g.classes().map(|c| c.id).collect();
    for _ in 0..rng.gen_range(0usize..4) {
        let a = ids[rng.gen_range(0usize..ids.len())];
        let b = ids[rng.gen_range(0usize..ids.len())];
        g.union(a, b);
    }
    g.rebuild();
    (g, r1)
}

/// Every engine's result passes the shared validator on random e-graphs,
/// and its reported DAG cost matches the materialized term.
#[test]
fn every_engine_passes_check_on_random_egraphs() {
    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0xE67_0000 ^ case);
        let (g, root) = random_egraph(&mut rng);
        let graph = ExtractGraph::new(&g);
        let costs = CostTable::build(&graph, &UnitCost, Parallelism::Serial);
        let roots = graph.root_indices(&g, &[root]);
        for name in ENGINE_NAMES {
            let (_, engine) = engine_by_name::<SymbolLang>(name).unwrap();
            let result = engine.extract(&graph, &roots, &costs);
            result
                .check(&graph, &roots)
                .unwrap_or_else(|e| panic!("case {case}, engine {name}: {e}"));
            let cost = result.dag_cost(&graph, &costs, &roots);
            let expr = result.term(&graph, roots[0]);
            assert_eq!(cost, dag_cost_of_expr(&expr), "case {case}, engine {name}");
        }
    }
}

/// Exact is a lower bound on every heuristic's realized DAG cost (and on
/// the tree extractor's), and `bnb` agrees with `exact` whenever the
/// branch-and-bound certifies optimality. Ports the former
/// `exact_lower_bounds_both_heuristics` property across the whole
/// registry.
#[test]
fn exact_lower_bounds_the_whole_registry() {
    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0xDA6_0000 ^ case);
        let (g, root) = random_egraph(&mut rng);

        let tree = TreeExtractor::new(&g, AstSize);
        let (_, tbest) = tree.find_best(root).unwrap();
        let tree_dag_cost = tbest.len() as f64;

        let heuristic_costs: Vec<(&str, f64)> = ENGINE_NAMES[..5]
            .iter()
            .map(|&name| {
                let (_, engine) = engine_by_name::<SymbolLang>(name).unwrap();
                let (cost, best) = extract_best(engine.as_ref(), &g, root, &UnitCost).unwrap();
                assert_eq!(cost, best.len() as f64, "case {case}, engine {name}");
                (name, cost)
            })
            .collect();

        // The exact search may hit its budget on adversarial instances;
        // optimality is only asserted when it finishes.
        if let Ok((ecost, ebest)) = extract_exact(&g, root, &UnitCost, 1 << 18) {
            assert_eq!(ecost, ebest.len() as f64, "case {case}");
            for (name, cost) in &heuristic_costs {
                assert!(
                    ecost <= cost + 1e-6,
                    "case {case}: exact {ecost} worse than {name} {cost}"
                );
            }
            assert!(
                ecost <= tree_dag_cost + 1e-6,
                "case {case}: exact {ecost} worse than tree-extracted dag {tree_dag_cost}"
            );
            // The SAT engine never returns worse than its greedy
            // portfolio, and at these sizes it should reach the optimum.
            let (scost, _) = extract_best(&SatExact::default(), &g, root, &UnitCost).unwrap();
            assert_eq!(scost, ecost, "case {case}: sat-exact vs bnb optimum");
        }
    }
}
