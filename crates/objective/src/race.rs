//! Multi-objective Pareto extraction: race the gym's engines under an
//! objective pair and assemble the non-dominated frontier.
//!
//! For each objective of the pair that lowers to a node-local cost
//! model, every engine extracts once under that model ("raced under"
//! that driver); each extracted term is then scored under *both*
//! objectives of the pair, yielding one point per (driver, engine).
//! The frontier is [`esyn_core::pareto::pareto_front`] over all
//! points, so by construction it weakly dominates every
//! single-objective corner. Engines run serially over a shared dense
//! snapshot and cost table (the gym's structure), so the whole race is
//! bit-identical at any thread count.

use esyn_core::lang::BoolLang;
use esyn_core::pareto::pareto_front;
use esyn_core::Features;
use esyn_egraph::{Analysis, EGraph, Id};
use esyn_extract::{engine_by_name, CostModel, CostTable, ExtractGraph, UnitCost};
use esyn_par::Parallelism;

use crate::Objective;

/// One engine's extraction, scored under both objectives of the pair.
#[derive(Clone, Debug)]
pub struct ParetoPoint {
    /// Canonical engine name.
    pub engine: &'static str,
    /// Name of the objective whose cost model drove the extraction.
    pub raced_under: &'static str,
    /// Score of the extracted term under the pair's first objective.
    pub x: f64,
    /// Score of the extracted term under the pair's second objective.
    pub y: f64,
}

/// The outcome of a [`pareto_race`].
#[derive(Clone, Debug)]
pub struct ParetoRace {
    /// Name of the x-axis objective.
    pub x_name: &'static str,
    /// Name of the y-axis objective.
    pub y_name: &'static str,
    /// Every valid (driver, engine) extraction, in deterministic order
    /// (drivers in pair order, engines in the caller's order).
    pub points: Vec<ParetoPoint>,
    /// The non-dominated frontier over all points, sorted by x.
    pub frontier: Vec<(f64, f64)>,
}

/// Races `engine_names` under the objective pair `(x, y)` on a
/// saturated e-graph and assembles the Pareto frontier.
///
/// Each objective of the pair with a node-local cost model drives one
/// round of extractions (deduplicated by name); if neither lowers —
/// e.g. `depth` against a future feature-only objective — a single
/// [`UnitCost`] round keeps the race meaningful. Engines whose result
/// fails the shared validator are dropped from the points.
pub fn pareto_race<N: Analysis<BoolLang>>(
    egraph: &EGraph<BoolLang, N>,
    roots: &[Id],
    x: &dyn Objective,
    y: &dyn Objective,
    engine_names: &[&str],
    par: Parallelism,
) -> ParetoRace {
    let graph = ExtractGraph::new(egraph);
    let root_ix = graph.root_indices(egraph, roots);

    let mut drivers: Vec<(&'static str, &dyn CostModel<BoolLang>)> = Vec::new();
    for o in [x, y] {
        if let Some(model) = o.cost_model() {
            if !drivers.iter().any(|(name, _)| *name == o.name()) {
                drivers.push((o.name(), model));
            }
        }
    }
    if drivers.is_empty() {
        drivers.push(("unit", &UnitCost));
    }

    let mut points = Vec::new();
    for (driver_name, model) in drivers {
        let costs = CostTable::build(&graph, model, par);
        for &name in engine_names {
            let (canonical, engine) = engine_by_name::<BoolLang>(name)
                .unwrap_or_else(|| panic!("unknown engine `{name}`"));
            let result = engine.extract(&graph, &root_ix, &costs);
            if result.check(&graph, &root_ix).is_err() {
                continue;
            }
            let term = result.term(&graph, root_ix[0]);
            let feats = Features::from_expr(&term);
            points.push(ParetoPoint {
                engine: canonical,
                raced_under: driver_name,
                x: x.score(&feats),
                y: y.score(&feats),
            });
        }
    }

    let frontier = pareto_front(
        &points
            .iter()
            .map(|p| (p.x, p.y))
            .collect::<Vec<(f64, f64)>>(),
    );
    ParetoRace {
        x_name: x.name(),
        y_name: y.name(),
        points,
        frontier,
    }
}
