//! Named, deterministic optimization objectives — the cost axis of the
//! paper ("technology-aware cost functions") made a first-class,
//! pluggable subsystem.
//!
//! An [`Objective`] scores whole candidates from their [`Features`]
//! (the pool side, via the [`ScoreOf`] adapter to
//! [`esyn_core::CandidateCost`]) and, where a node-local lowering
//! exists, prices individual e-nodes (the extract side, via
//! [`esyn_extract::CostModel`]) so every gym engine can race under it.
//! Objectives are looked up by name from a fixed registry
//! ([`OBJECTIVE_NAMES`], [`objective_by_name`]) and are pure functions
//! of their inputs: the `techmap` objective derives per-op costs from
//! [`esyn_techmap::Library::op_costs`] once, and the `activity`
//! objective estimates switching activity by seeded random simulation
//! under the `esyn-rand` contract — both are bit-identical across runs
//! and thread counts.
//!
//! On top of single objectives, [`pareto_race`] races the extraction
//! gym's engines under an objective *pair* and assembles the
//! non-dominated frontier via [`esyn_core::pareto`]; the CLI surfaces
//! it as `esyn pareto`, and `esyn serve` keys its result cache by
//! objective name so entries never alias across objectives.
//!
//! # Example
//!
//! ```
//! use esyn_objective::{objective_by_name, OBJECTIVE_NAMES};
//!
//! let tech = objective_by_name("techmap").expect("registered");
//! assert_eq!(tech.name(), "techmap");
//! assert!(tech.cost_model().is_some(), "techmap lowers to e-node costs");
//! assert!(OBJECTIVE_NAMES.contains(&"inv-weighted"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod models;
mod race;

use esyn_core::lang::BoolLang;
use esyn_core::Objective as MapObjective;
use esyn_core::{CandidateCost, Features};
use esyn_extract::CostModel;

pub use models::{estimate_activity, op_activity, tech_op_costs, OpActivity, ACTIVITY_SEED};
pub use race::{pareto_race, ParetoPoint, ParetoRace};

/// A named, deterministic optimization objective.
///
/// Implementations must be pure: the same features (or e-node) always
/// produce the same finite, non-negative score, independent of thread
/// count or call order — scores feed the candidate pool's `min_by` and
/// [`esyn_extract::CostTable::build`], which asserts finiteness.
pub trait Objective: Sync {
    /// Canonical registry name (`area`, `depth`, `techmap`, …).
    fn name(&self) -> &'static str;

    /// One-line human description for `--help` output.
    fn describe(&self) -> &'static str;

    /// Scores a whole candidate from its features (lower is better).
    fn score(&self, feats: &Features) -> f64;

    /// The node-local lowering of this objective, when one exists.
    ///
    /// `depth` returns `None`: a level count is not expressible as a
    /// sum of per-node costs (the gym's DAG-cost semantics), so it
    /// participates in pool scoring and Pareto axes only.
    fn cost_model(&self) -> Option<&dyn CostModel<BoolLang>>;

    /// The mapping objective the backend should run under when this
    /// objective drives a full `esyn_optimize` flow.
    fn backend(&self) -> MapObjective;
}

/// Adapter: use any [`Objective`] as a pool-side [`CandidateCost`].
pub struct ScoreOf<'a>(pub &'a dyn Objective);

impl CandidateCost for ScoreOf<'_> {
    fn cost(&self, feats: &Features) -> f64 {
        self.0.score(feats)
    }
}

/// Canonical names of every registered objective, in registry order.
pub const OBJECTIVE_NAMES: [&str; 6] = [
    "unit",
    "area",
    "depth",
    "inv-weighted",
    "techmap",
    "activity",
];

/// Resolves an objective name (hyphen or underscore spelling) to its
/// canonical registry form.
pub fn canonical_objective_name(name: &str) -> Option<&'static str> {
    let normalized = name.replace('_', "-");
    OBJECTIVE_NAMES.iter().copied().find(|&n| n == normalized)
}

/// Every registered objective, in registry order.
pub fn all_objectives() -> [&'static dyn Objective; 6] {
    [
        &models::Unit,
        &models::GateCount,
        &models::Depth,
        &models::InvWeighted,
        &models::Techmap,
        &models::Activity,
    ]
}

/// Looks up a registered objective by name (hyphen or underscore
/// spelling accepted).
pub fn objective_by_name(name: &str) -> Option<&'static dyn Objective> {
    let canonical = canonical_objective_name(name)?;
    all_objectives().into_iter().find(|o| o.name() == canonical)
}

/// Names of the objectives that lower to a node-local cost model and
/// can therefore drive the extraction gym (`gym --cost`).
pub fn lowerable_objective_names() -> Vec<&'static str> {
    all_objectives()
        .iter()
        .filter(|o| o.cost_model().is_some())
        .map(|o| o.name())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_consistent() {
        let objectives = all_objectives();
        assert_eq!(objectives.len(), OBJECTIVE_NAMES.len());
        for (o, &name) in objectives.iter().zip(OBJECTIVE_NAMES.iter()) {
            assert_eq!(o.name(), name, "registry order drifted");
            assert!(!o.describe().is_empty());
            assert_eq!(
                objective_by_name(name).map(|r| r.name()),
                Some(name),
                "round-trip by name"
            );
        }
        assert!(objective_by_name("no-such-objective").is_none());
    }

    #[test]
    fn underscore_spellings_canonicalize() {
        assert_eq!(
            canonical_objective_name("inv_weighted"),
            Some("inv-weighted")
        );
        assert_eq!(canonical_objective_name("techmap"), Some("techmap"));
        assert_eq!(canonical_objective_name("Techmap"), None);
    }

    #[test]
    fn depth_is_the_only_non_lowerable_objective() {
        let lowerable = lowerable_objective_names();
        assert!(!lowerable.contains(&"depth"));
        assert_eq!(lowerable.len(), OBJECTIVE_NAMES.len() - 1);
    }
}
