//! The registered objectives and their node-local lowerings.
//!
//! Every cost here is strictly positive on operator nodes (`And`,
//! `Or`, `Not`) and zero on leaves and the `Outs` wrapper. That sign
//! discipline matters twice: [`esyn_extract::CostTable::build`]
//! asserts finite non-negative node costs, and the SAT-exact engine's
//! cycle handling relies on every e-graph cycle passing through at
//! least one positively-priced operator node.

use std::sync::OnceLock;

use esyn_core::lang::BoolLang;
use esyn_core::Objective as MapObjective;
use esyn_core::{Features, WeightedOpsCost};
use esyn_extract::CostModel;
use esyn_techmap::{Library, OpCosts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Objective;

/// `unit`: every node costs 1 — the gym's historical baseline,
/// registered so `--cost unit` and the default race agree exactly.
pub(crate) struct Unit;

impl Objective for Unit {
    fn name(&self) -> &'static str {
        "unit"
    }
    fn describe(&self) -> &'static str {
        "every node costs 1 (AST size / UnitCost baseline)"
    }
    fn score(&self, feats: &Features) -> f64 {
        feats.num_nodes as f64
    }
    fn cost_model(&self) -> Option<&dyn CostModel<BoolLang>> {
        Some(self)
    }
    fn backend(&self) -> MapObjective {
        MapObjective::Area
    }
}

impl CostModel<BoolLang> for Unit {
    fn node_cost(&self, _enode: &BoolLang) -> f64 {
        // Identical to `esyn_extract::UnitCost`, including the charge
        // on leaves and `Outs` — `gym --cost unit` must reproduce the
        // default race bit-for-bit.
        1.0
    }
}

/// `area`: gate count — operator nodes cost 1, leaves and the output
/// wrapper are free.
pub(crate) struct GateCount;

impl Objective for GateCount {
    fn name(&self) -> &'static str {
        "area"
    }
    fn describe(&self) -> &'static str {
        "gate count (AND/OR/NOT each cost 1, leaves free)"
    }
    fn score(&self, feats: &Features) -> f64 {
        (feats.num_and + feats.num_or + feats.num_not) as f64
    }
    fn cost_model(&self) -> Option<&dyn CostModel<BoolLang>> {
        Some(self)
    }
    fn backend(&self) -> MapObjective {
        MapObjective::Area
    }
}

impl CostModel<BoolLang> for GateCount {
    fn node_cost(&self, enode: &BoolLang) -> f64 {
        match enode {
            BoolLang::And(_) | BoolLang::Or(_) | BoolLang::Not(_) => 1.0,
            BoolLang::Const(_) | BoolLang::Var(_) | BoolLang::Outs(_) => 0.0,
        }
    }
}

/// `depth`: logic levels. Scores candidates by their feature depth;
/// has no node-local lowering (levels are a max over paths, not a sum
/// over nodes), so it serves as a pool scorer and a Pareto axis.
pub(crate) struct Depth;

impl Objective for Depth {
    fn name(&self) -> &'static str {
        "depth"
    }
    fn describe(&self) -> &'static str {
        "logic levels (delay proxy; pool/Pareto axis only)"
    }
    fn score(&self, feats: &Features) -> f64 {
        feats.depth as f64
    }
    fn cost_model(&self) -> Option<&dyn CostModel<BoolLang>> {
        None
    }
    fn backend(&self) -> MapObjective {
        MapObjective::Delay
    }
}

/// `inv-weighted`: the paper's cheap-inverter weighting — inverters
/// are nearly free after mapping, so NOT costs a fraction of AND/OR.
/// Weights come from [`WeightedOpsCost::default`] so the pool scorer
/// and the e-node lowering can never drift apart.
pub(crate) struct InvWeighted;

impl Objective for InvWeighted {
    fn name(&self) -> &'static str {
        "inv-weighted"
    }
    fn describe(&self) -> &'static str {
        "weighted ops, cheap inverters (paper's AND=OR=1.0, NOT=0.3)"
    }
    fn score(&self, feats: &Features) -> f64 {
        use esyn_core::CandidateCost;
        WeightedOpsCost::default().cost(feats)
    }
    fn cost_model(&self) -> Option<&dyn CostModel<BoolLang>> {
        Some(self)
    }
    fn backend(&self) -> MapObjective {
        MapObjective::Area
    }
}

impl CostModel<BoolLang> for InvWeighted {
    fn node_cost(&self, enode: &BoolLang) -> f64 {
        let w = WeightedOpsCost::default();
        match enode {
            BoolLang::And(_) => w.w_and,
            BoolLang::Or(_) => w.w_or,
            BoolLang::Not(_) => w.w_not,
            BoolLang::Const(_) | BoolLang::Var(_) | BoolLang::Outs(_) => 0.0,
        }
    }
}

/// Per-operator costs of the reproduction's standard library, derived
/// once from [`Library::asap7_like`] (see
/// [`Library::op_costs`]).
pub fn tech_op_costs() -> &'static OpCosts {
    static COSTS: OnceLock<OpCosts> = OnceLock::new();
    COSTS.get_or_init(|| Library::asap7_like().op_costs())
}

/// `techmap`: each operator node costs the area of its cheapest
/// realisation in the `asap7_like` cell library — extraction minimises
/// what the mapper will actually charge.
pub(crate) struct Techmap;

impl Objective for Techmap {
    fn name(&self) -> &'static str {
        "techmap"
    }
    fn describe(&self) -> &'static str {
        "cheapest asap7_like cell area per op (AND2/OR2/INV)"
    }
    fn score(&self, feats: &Features) -> f64 {
        let c = tech_op_costs();
        c.and.area * feats.num_and as f64
            + c.or.area * feats.num_or as f64
            + c.not.area * feats.num_not as f64
    }
    fn cost_model(&self) -> Option<&dyn CostModel<BoolLang>> {
        Some(self)
    }
    fn backend(&self) -> MapObjective {
        MapObjective::Area
    }
}

impl CostModel<BoolLang> for Techmap {
    fn node_cost(&self, enode: &BoolLang) -> f64 {
        let c = tech_op_costs();
        match enode {
            BoolLang::And(_) => c.and.area,
            BoolLang::Or(_) => c.or.area,
            BoolLang::Not(_) => c.not.area,
            BoolLang::Const(_) | BoolLang::Var(_) | BoolLang::Outs(_) => 0.0,
        }
    }
}

/// Estimated per-operator switching activity (expected toggles per
/// cycle under independent uniform inputs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpActivity {
    /// Toggle rate of a two-input AND output.
    pub and: f64,
    /// Toggle rate of a two-input OR output.
    pub or: f64,
    /// Toggle rate of an inverter output.
    pub not: f64,
}

/// Fixed seed of the registry `activity` objective's estimator.
pub const ACTIVITY_SEED: u64 = 0xE5_AC71;

/// Words of 64 parallel samples drawn by the registry estimator.
const ACTIVITY_WORDS: usize = 1024;

/// Estimates per-operator toggle rates by seeded random simulation:
/// `words` successive 64-bit input words per operand, counting output
/// bit flips between consecutive words. Deterministic under the
/// `esyn-rand` contract — the same seed always yields the same rates
/// (analytically, AND/OR → 0.375 and NOT → 0.5 as `words` grows).
pub fn estimate_activity(seed: u64, words: usize) -> OpActivity {
    assert!(words >= 2, "need at least two words to observe a toggle");
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut a_prev, mut b_prev) = (rng.gen::<u64>(), rng.gen::<u64>());
    let (mut tog_and, mut tog_or, mut tog_not) = (0u64, 0u64, 0u64);
    for _ in 1..words {
        let (a, b) = (rng.gen::<u64>(), rng.gen::<u64>());
        tog_and += u64::from(((a & b) ^ (a_prev & b_prev)).count_ones());
        tog_or += u64::from(((a | b) ^ (a_prev | b_prev)).count_ones());
        tog_not += u64::from((!a ^ !a_prev).count_ones());
        (a_prev, b_prev) = (a, b);
    }
    let transitions = ((words - 1) * 64) as f64;
    let act = OpActivity {
        and: tog_and as f64 / transitions,
        or: tog_or as f64 / transitions,
        not: tog_not as f64 / transitions,
    };
    assert!(
        act.and > 0.0 && act.or > 0.0 && act.not > 0.0,
        "degenerate simulation: some operator never toggled"
    );
    act
}

/// The registry `activity` rates, estimated once at [`ACTIVITY_SEED`].
pub fn op_activity() -> &'static OpActivity {
    static ACT: OnceLock<OpActivity> = OnceLock::new();
    ACT.get_or_init(|| estimate_activity(ACTIVITY_SEED, ACTIVITY_WORDS))
}

/// `activity`: a switching-activity/power proxy — each operator node
/// costs its estimated output toggle rate, so extraction prefers forms
/// whose signals switch less.
pub(crate) struct Activity;

impl Objective for Activity {
    fn name(&self) -> &'static str {
        "activity"
    }
    fn describe(&self) -> &'static str {
        "switching-activity power proxy (seeded random simulation)"
    }
    fn score(&self, feats: &Features) -> f64 {
        let a = op_activity();
        a.and * feats.num_and as f64 + a.or * feats.num_or as f64 + a.not * feats.num_not as f64
    }
    fn cost_model(&self) -> Option<&dyn CostModel<BoolLang>> {
        Some(self)
    }
    fn backend(&self) -> MapObjective {
        MapObjective::Area
    }
}

impl CostModel<BoolLang> for Activity {
    fn node_cost(&self, enode: &BoolLang) -> f64 {
        let a = op_activity();
        match enode {
            BoolLang::And(_) => a.and,
            BoolLang::Or(_) => a.or,
            BoolLang::Not(_) => a.not,
            BoolLang::Const(_) | BoolLang::Var(_) | BoolLang::Outs(_) => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activity_estimates_match_the_analytic_rates() {
        let act = *op_activity();
        // P(out=1) is 1/4 for AND (3/4 for OR), so under independent
        // samples the toggle rate is 2·(1/4)·(3/4) = 0.375; an
        // inverter toggles with its input, rate 1/2.
        assert!((act.and - 0.375).abs() < 0.02, "and = {}", act.and);
        assert!((act.or - 0.375).abs() < 0.02, "or = {}", act.or);
        assert!((act.not - 0.5).abs() < 0.02, "not = {}", act.not);
    }

    #[test]
    fn activity_estimator_is_seed_deterministic() {
        assert_eq!(
            estimate_activity(ACTIVITY_SEED, 256),
            estimate_activity(ACTIVITY_SEED, 256)
        );
        assert_ne!(
            estimate_activity(1, 256),
            estimate_activity(2, 256),
            "different seeds should sample different streams"
        );
    }

    #[test]
    fn techmap_costs_come_from_the_library() {
        let lib_costs = Library::asap7_like().op_costs();
        assert_eq!(*tech_op_costs(), lib_costs);
        // The derived costs keep inverters strictly cheaper than gates,
        // the property the paper's inv-weighted heuristic approximates.
        assert!(lib_costs.not.area < lib_costs.and.area);
    }
}
