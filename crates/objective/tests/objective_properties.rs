//! Property tests over the objective registry: every lowerable
//! objective produces finite, non-negative per-node costs on every
//! registry circuit; the gym's engines all pass the shared validator
//! under every non-unit cost model; and the Pareto frontier weakly
//! dominates the single-objective corners by construction.

use esyn_core::pareto::{dominates, frontier_dominates};
use esyn_core::{all_rules, network_to_recexpr, saturate, SaturationLimits};
use esyn_extract::{gym, CostTable, ExtractGraph, ENGINE_NAMES};
use esyn_objective::{all_objectives, objective_by_name, pareto_race};
use esyn_par::Parallelism;

/// Saturation budget for property sweeps: enough rewriting to make the
/// e-graphs non-trivial, cheap enough to cover the whole registry.
fn sweep_limits() -> SaturationLimits {
    SaturationLimits {
        iter_limit: 3,
        node_limit: 2_000,
        ..SaturationLimits::small()
    }
}

#[test]
fn every_lowerable_objective_is_finite_and_non_negative_on_the_registry() {
    // `CostTable::build` already asserts finite non-negative costs per
    // node — this sweep proves the assertion holds for every registered
    // cost model on every registry circuit, and re-checks the table
    // contents explicitly so the property does not silently rest on an
    // internal debug assertion.
    for b in esyn_circuits::all_benchmarks() {
        let expr = network_to_recexpr(&b.network);
        let runner = saturate(&expr, &all_rules(), &sweep_limits());
        let graph = ExtractGraph::new(&runner.egraph);
        for obj in all_objectives() {
            let Some(model) = obj.cost_model() else {
                continue; // feature-only objectives (depth) have no lowering
            };
            let table = CostTable::build(&graph, model, Parallelism::Serial);
            for ci in 0..graph.num_classes() {
                for k in 0..graph.nodes(ci).len() {
                    let c = table.cost(ci, k);
                    assert!(
                        c.is_finite() && c >= 0.0,
                        "{}: objective `{}` gave cost {c} at class {ci} node {k}",
                        b.name,
                        obj.name()
                    );
                }
            }
        }
    }
}

#[test]
fn gym_race_passes_every_check_under_every_non_unit_cost_model() {
    // ISSUE acceptance: all engines race under >= 3 non-unit models with
    // every result passing `ExtractionResult::check`. The registry gives
    // four (area, inv-weighted, techmap, activity).
    let net = esyn_circuits::by_name("qadd").expect("qadd generator");
    let expr = network_to_recexpr(&net);
    let runner = saturate(&expr, &all_rules(), &SaturationLimits::small());
    let mut non_unit = 0;
    for obj in all_objectives() {
        if obj.name() == "unit" {
            continue;
        }
        let Some(model) = obj.cost_model() else {
            continue;
        };
        non_unit += 1;
        let rows = gym::race(
            &runner.egraph,
            &runner.roots,
            model,
            &ENGINE_NAMES,
            Parallelism::Serial,
        );
        assert_eq!(rows.len(), ENGINE_NAMES.len());
        for row in &rows {
            assert!(
                row.check.is_ok(),
                "engine `{}` under `{}`: {:?}",
                row.engine,
                obj.name(),
                row.check
            );
            assert!(row.dag_cost.is_finite() && row.dag_cost >= 0.0);
            assert!(row.tree_cost >= row.dag_cost - 1e-9, "tree >= dag sharing");
        }
    }
    assert!(non_unit >= 3, "registry must lower >= 3 non-unit models");
}

#[test]
fn pareto_frontier_weakly_dominates_single_objective_corners() {
    let net = esyn_circuits::by_name("qadd").expect("qadd generator");
    let expr = network_to_recexpr(&net);
    let runner = saturate(&expr, &all_rules(), &SaturationLimits::small());
    let (x, y) = (
        objective_by_name("area").unwrap(),
        objective_by_name("depth").unwrap(),
    );
    let race = pareto_race(
        &runner.egraph,
        &runner.roots,
        x,
        y,
        &ENGINE_NAMES,
        Parallelism::Serial,
    );
    assert!(!race.points.is_empty(), "all engines validated away?");

    // The corners are the best single-objective points over the whole
    // race; the frontier must weakly dominate both (and every other
    // point — it is the non-dominated set over exactly these points).
    let corner_x = race
        .points
        .iter()
        .map(|p| (p.x, p.y))
        .min_by(|a, b| a.partial_cmp(b).unwrap())
        .unwrap();
    let corner_y = race
        .points
        .iter()
        .map(|p| (p.y, p.x))
        .min_by(|a, b| a.partial_cmp(b).unwrap())
        .map(|(py, px)| (px, py))
        .unwrap();
    assert!(
        frontier_dominates(&race.frontier, &[corner_x, corner_y]),
        "frontier {:?} fails to cover corners {corner_x:?} / {corner_y:?}",
        race.frontier
    );
    let all: Vec<(f64, f64)> = race.points.iter().map(|p| (p.x, p.y)).collect();
    assert!(frontier_dominates(&race.frontier, &all));

    // The frontier itself is mutually non-dominated and sorted by x.
    for (i, &p) in race.frontier.iter().enumerate() {
        for (j, &q) in race.frontier.iter().enumerate() {
            assert!(i == j || !dominates(p, q), "frontier not minimal");
        }
    }
    for w in race.frontier.windows(2) {
        assert!(w[0].0 <= w[1].0, "frontier not sorted by x");
    }
}
