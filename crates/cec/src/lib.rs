//! Combinational equivalence checking (ABC `cec` substitute).
//!
//! The paper validates every e-graph rewriting result with combinational
//! equivalence checking (§3.3: "We also check the result using
//! combinational equivalence checking to ensure correct implementation of
//! logic rewriting in e-graph"). This crate provides that step:
//!
//! 1. a fast random-simulation filter that finds most inequivalences in
//!    microseconds, then
//! 2. a SAT miter per output pair (Tseitin-encoded into the workspace's
//!    CDCL solver) for the proof.
//!
//! Networks are matched by *input name* (declaration order may differ) and
//! by output position.
//!
//! # Example
//!
//! ```
//! use esyn_cec::{check_equivalence, EquivResult};
//! use esyn_eqn::parse_eqn;
//!
//! let a = parse_eqn("INORDER = x y;\nOUTORDER = f;\nf = x*y;\n")?;
//! let b = parse_eqn("INORDER = y x;\nOUTORDER = f;\nf = !(!x + !y);\n")?;
//! assert_eq!(check_equivalence(&a, &b), EquivResult::Equivalent);
//! # Ok::<(), esyn_eqn::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use esyn_eqn::{Network, Node};
use esyn_sat::{Lit, Solver, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Outcome of an equivalence check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EquivResult {
    /// The networks compute the same function on every output.
    Equivalent,
    /// A differing output was found; carries the output index and a
    /// counterexample assignment in the *first* network's input order.
    NotEquivalent {
        /// Index of the first differing output.
        output: usize,
        /// Input assignment (by the first network's input order) under
        /// which the outputs differ.
        counterexample: Vec<bool>,
    },
    /// The networks cannot be compared (different interface).
    Incompatible(String),
}

/// Number of 64-pattern random simulation words tried before SAT.
const SIM_ROUNDS: usize = 64;

/// Checks combinational equivalence of two networks.
///
/// Inputs are matched by name (an input present in only one network is
/// fine — the other network simply ignores it); outputs are matched by
/// position and must agree in count.
pub fn check_equivalence(a: &Network, b: &Network) -> EquivResult {
    check_equivalence_seeded(a, b, 0xE5E5_1234_ABCD_0001)
}

/// [`check_equivalence`] with an explicit random-simulation seed.
pub fn check_equivalence_seeded(a: &Network, b: &Network, seed: u64) -> EquivResult {
    if a.num_outputs() != b.num_outputs() {
        return EquivResult::Incompatible(format!(
            "output count mismatch: {} vs {}",
            a.num_outputs(),
            b.num_outputs()
        ));
    }
    // --- Phase 1: random simulation. ---
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..SIM_ROUNDS {
        let wa: Vec<u64> = (0..a.num_inputs()).map(|_| rng.gen()).collect();
        let wb: Vec<u64> = b
            .input_names()
            .iter()
            .map(|n| match a.input_names().iter().position(|m| m == n) {
                Some(i) => wa[i],
                None => rng.gen(), // input only b knows; value is free
            })
            .collect();
        let ra = a.simulate(&wa);
        let rb = b.simulate(&wb);
        for (o, (x, y)) in ra.iter().zip(&rb).enumerate() {
            if x != y {
                let bit = (x ^ y).trailing_zeros();
                let cex = (0..a.num_inputs())
                    .map(|i| (wa[i] >> bit) & 1 == 1)
                    .collect();
                return EquivResult::NotEquivalent {
                    output: o,
                    counterexample: cex,
                };
            }
        }
    }

    // --- Phase 2: SAT miter. ---
    let mut solver = Solver::new();
    // shared input variables, keyed by name
    let mut input_vars: HashMap<String, Var> = HashMap::new();
    for name in a.input_names().iter().chain(b.input_names()) {
        input_vars
            .entry(name.clone())
            .or_insert_with(|| solver.new_var());
    }
    let lits_a = encode(a, &mut solver, &input_vars);
    let lits_b = encode(b, &mut solver, &input_vars);

    for (o, (la, lb)) in lits_a.iter().zip(&lits_b).enumerate() {
        // different? two assumption queries: (la & !lb) then (!la & lb)
        for (x, y) in [(*la, !*lb), (!*la, *lb)] {
            if solver.solve_with_assumptions(&[x, y]) {
                let cex = a
                    .input_names()
                    .iter()
                    .map(|n| solver.value(input_vars[n]).unwrap_or(false))
                    .collect();
                return EquivResult::NotEquivalent {
                    output: o,
                    counterexample: cex,
                };
            }
        }
    }
    EquivResult::Equivalent
}

/// Tseitin-encodes a network over shared input variables; returns one
/// literal per output.
fn encode(net: &Network, solver: &mut Solver, inputs: &HashMap<String, Var>) -> Vec<Lit> {
    let mut lit_of: HashMap<esyn_eqn::NodeId, Lit> = HashMap::new();
    let mut const_lit: Option<Lit> = None;
    for id in net.topo_order() {
        let lit = match net.node(id) {
            Node::Const(v) => {
                let base = *const_lit.get_or_insert_with(|| {
                    let cv = solver.new_var();
                    solver.add_clause(&[Lit::pos(cv)]); // constant TRUE var
                    Lit::pos(cv)
                });
                if v {
                    base
                } else {
                    !base
                }
            }
            Node::Input(idx) => Lit::pos(inputs[net.input_name(idx)]),
            Node::Not(x) => !lit_of[&x],
            Node::And(x, y) => {
                let (lx, ly) = (lit_of[&x], lit_of[&y]);
                let v = solver.new_var();
                let lv = Lit::pos(v);
                solver.add_clause(&[!lv, lx]);
                solver.add_clause(&[!lv, ly]);
                solver.add_clause(&[lv, !lx, !ly]);
                lv
            }
            Node::Or(x, y) => {
                let (lx, ly) = (lit_of[&x], lit_of[&y]);
                let v = solver.new_var();
                let lv = Lit::pos(v);
                solver.add_clause(&[lv, !lx]);
                solver.add_clause(&[lv, !ly]);
                solver.add_clause(&[!lv, lx, ly]);
                lv
            }
        };
        lit_of.insert(id, lit);
    }
    net.outputs().iter().map(|(_, id)| lit_of[id]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use esyn_eqn::parse_eqn;

    #[test]
    fn identical_networks_equivalent() {
        let a = parse_eqn("INORDER = x y;\nOUTORDER = f;\nf = x*y + !x*!y;\n").unwrap();
        assert_eq!(check_equivalence(&a, &a), EquivResult::Equivalent);
    }

    #[test]
    fn demorgan_forms_equivalent() {
        let a = parse_eqn("INORDER = x y;\nOUTORDER = f;\nf = !(x*y);\n").unwrap();
        let b = parse_eqn("INORDER = x y;\nOUTORDER = f;\nf = !x + !y;\n").unwrap();
        assert_eq!(check_equivalence(&a, &b), EquivResult::Equivalent);
    }

    #[test]
    fn different_input_order_equivalent() {
        let a = parse_eqn("INORDER = x y z;\nOUTORDER = f;\nf = x*(y+z);\n").unwrap();
        let b = parse_eqn("INORDER = z y x;\nOUTORDER = f;\nf = x*y + x*z;\n").unwrap();
        assert_eq!(check_equivalence(&a, &b), EquivResult::Equivalent);
    }

    #[test]
    fn inequivalent_with_counterexample() {
        let a = parse_eqn("INORDER = x y;\nOUTORDER = f;\nf = x*y;\n").unwrap();
        let b = parse_eqn("INORDER = x y;\nOUTORDER = f;\nf = x+y;\n").unwrap();
        match check_equivalence(&a, &b) {
            EquivResult::NotEquivalent {
                output,
                counterexample,
            } => {
                assert_eq!(output, 0);
                // verify the counterexample really distinguishes them
                let wa: Vec<u64> = counterexample
                    .iter()
                    .map(|&v| if v { 1 } else { 0 })
                    .collect();
                let ra = a.simulate(&wa)[0] & 1;
                let rb = b.simulate(&wa)[0] & 1;
                assert_ne!(ra, rb);
            }
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn near_equivalent_needs_sat() {
        // Functions differing on exactly one of 2^10 assignments: random
        // simulation will usually miss it; SAT must catch it.
        let inputs = "a b c d e f g h i j";
        let all_and = "a*b*c*d*e*f*g*h*i*j";
        let x = parse_eqn(&format!(
            "INORDER = {inputs};\nOUTORDER = o;\no = {all_and};\n"
        ))
        .unwrap();
        let y = parse_eqn(&format!("INORDER = {inputs};\nOUTORDER = o;\no = 0;\n")).unwrap();
        match check_equivalence(&x, &y) {
            EquivResult::NotEquivalent { counterexample, .. } => {
                assert!(counterexample.iter().all(|&v| v), "only all-ones differs");
            }
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn multi_output_mismatch_reports_index() {
        let a = parse_eqn("INORDER = x y;\nOUTORDER = f g;\nf = x*y;\ng = x+y;\n").unwrap();
        let b = parse_eqn("INORDER = x y;\nOUTORDER = f g;\nf = x*y;\ng = x;\n").unwrap();
        match check_equivalence(&a, &b) {
            EquivResult::NotEquivalent { output, .. } => assert_eq!(output, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn incompatible_output_counts() {
        let a = parse_eqn("INORDER = x;\nOUTORDER = f;\nf = x;\n").unwrap();
        let b = parse_eqn("INORDER = x;\nOUTORDER = f g;\nf = x;\ng = !x;\n").unwrap();
        assert!(matches!(
            check_equivalence(&a, &b),
            EquivResult::Incompatible(_)
        ));
    }

    #[test]
    fn constant_networks() {
        let a = parse_eqn("INORDER = x;\nOUTORDER = f;\nf = x * !x;\n").unwrap();
        let b = parse_eqn("INORDER = x;\nOUTORDER = f;\nf = 0;\n").unwrap();
        assert_eq!(check_equivalence(&a, &b), EquivResult::Equivalent);
    }

    #[test]
    fn xor_associativity_equivalent() {
        let a = parse_eqn(
            "INORDER = x y z;\nOUTORDER = p;\n\
             w1 = (x*!y) + (!x*y);\np = (w1*!z) + (!w1*z);\n",
        )
        .unwrap();
        let b = parse_eqn(
            "INORDER = x y z;\nOUTORDER = p;\n\
             w2 = (y*!z) + (!y*z);\np = (x*!w2) + (!x*w2);\n",
        )
        .unwrap();
        assert_eq!(check_equivalence(&a, &b), EquivResult::Equivalent);
    }
}
