//! Combinational equivalence checking (ABC `cec` substitute).
//!
//! The paper validates every e-graph rewriting result with combinational
//! equivalence checking (§3.3: "We also check the result using
//! combinational equivalence checking to ensure correct implementation of
//! logic rewriting in e-graph"). This crate provides that step:
//!
//! 1. a fast random-simulation filter that finds most inequivalences in
//!    microseconds, then
//! 2. a SAT miter per output (Tseitin-encoded into the workspace's CDCL
//!    solver) for the proof.
//!
//! Networks are matched by *input name* (declaration order may differ) and
//! by output position.
//!
//! # Parallel architecture
//!
//! Both phases are embarrassingly parallel and run on
//! [`esyn_par::par_map`] (see [`check_equivalence_par`]):
//!
//! * each **simulation round** owns a private RNG seeded from
//!   `split_seeds(seed, round)`, so a round's patterns are a pure
//!   function of `(seed, round)`;
//! * each **output miter** is solved by a worker that owns its own
//!   [`Solver`] and Tseitin-encodes only that output's
//!   cone of influence — no solver state is ever shared, so a verdict
//!   (and its counterexample) depends only on `(networks, output)`.
//!
//! The first failing round / lowest failing output wins, picked from the
//! order-preserving map results. Verdicts and counterexamples are
//! therefore **bit-identical at any thread count**, including the
//! `ESYN_THREADS=1` serial fallback — proven by
//! `tests/parallel_determinism.rs` at the workspace root.
//!
//! # Example
//!
//! ```
//! use esyn_cec::{check_equivalence, EquivResult};
//! use esyn_eqn::parse_eqn;
//!
//! let a = parse_eqn("INORDER = x y;\nOUTORDER = f;\nf = x*y;\n")?;
//! let b = parse_eqn("INORDER = y x;\nOUTORDER = f;\nf = !(!x + !y);\n")?;
//! assert_eq!(check_equivalence(&a, &b), EquivResult::Equivalent);
//! # Ok::<(), esyn_eqn::ParseError>(())
//! ```
//!
//! Inequivalent pairs come back with a concrete counterexample in the
//! first network's input order:
//!
//! ```
//! use esyn_cec::{check_equivalence, EquivResult};
//! use esyn_eqn::parse_eqn;
//!
//! let a = parse_eqn("INORDER = x y;\nOUTORDER = f;\nf = x*y;\n")?;
//! let b = parse_eqn("INORDER = x y;\nOUTORDER = f;\nf = x+y;\n")?;
//! let EquivResult::NotEquivalent { output, counterexample } = check_equivalence(&a, &b)
//! else {
//!     panic!("AND and OR differ");
//! };
//! assert_eq!(output, 0);
//! // The assignment really distinguishes f = x*y from f = x+y …
//! let words: Vec<u64> = counterexample.iter().map(|&v| v as u64).collect();
//! assert_ne!(a.simulate(&words)[0] & 1, b.simulate(&words)[0] & 1);
//! # Ok::<(), esyn_eqn::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use esyn_eqn::{Network, Node, NodeId};
use esyn_par::{par_map, Parallelism};
use esyn_sat::{Lit, Solver, Var};
use rand::rngs::StdRng;
use rand::{split_seeds, Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Outcome of an equivalence check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EquivResult {
    /// The networks compute the same function on every output.
    Equivalent,
    /// A differing output was found; carries the output index and a
    /// counterexample assignment in the *first* network's input order.
    NotEquivalent {
        /// Index of the first differing output.
        output: usize,
        /// Input assignment (by the first network's input order) under
        /// which the outputs differ.
        counterexample: Vec<bool>,
    },
    /// The networks cannot be compared (different interface).
    Incompatible(String),
}

/// Number of 64-pattern random simulation words tried before SAT.
const SIM_ROUNDS: usize = 64;

/// Simulation rounds submitted per scheduling chunk; a mismatch found in
/// one chunk skips all later chunks.
const SIM_CHUNK: usize = 16;

/// Below this combined node count the simulation filter runs inline:
/// 64 rounds over a small network finish faster than a thread spawn.
const PAR_MIN_SIM_NODES: usize = 2048;

/// Below this combined node count the per-output SAT miters run inline.
const PAR_MIN_SAT_NODES: usize = 256;

/// The random-simulation seed [`check_equivalence`] uses.
pub const DEFAULT_SIM_SEED: u64 = 0xE5E5_1234_ABCD_0001;

/// Checks combinational equivalence of two networks.
///
/// Inputs are matched by name (an input present in only one network is
/// fine — the other network simply ignores it); outputs are matched by
/// position and must agree in count.
pub fn check_equivalence(a: &Network, b: &Network) -> EquivResult {
    check_equivalence_seeded(a, b, DEFAULT_SIM_SEED)
}

/// [`check_equivalence`] with an explicit random-simulation seed.
pub fn check_equivalence_seeded(a: &Network, b: &Network, seed: u64) -> EquivResult {
    check_equivalence_par(a, b, seed, Parallelism::Auto)
}

/// [`check_equivalence`] with an explicit seed and thread budget.
///
/// The verdict — including which output is reported and the exact
/// counterexample — is a pure function of `(a, b, seed)`; `par` only
/// changes wall-clock time. Tiny instances ignore `par` and run inline.
pub fn check_equivalence_par(a: &Network, b: &Network, seed: u64, par: Parallelism) -> EquivResult {
    if a.num_outputs() != b.num_outputs() {
        return EquivResult::Incompatible(format!(
            "output count mismatch: {} vs {}",
            a.num_outputs(),
            b.num_outputs()
        ));
    }
    let size = a.len() + b.len();

    // Both phases run chunk by chunk with a check in between: the first
    // `Some` in index order wins no matter where the chunk boundaries
    // fall or how a chunk was scheduled, so the verdict stays
    // thread-count-invariant while an early mismatch still short-circuits
    // the remaining work (the pre-parallel code's early exit).

    // --- Phase 1: random simulation, one private RNG per round. ---
    let round_seeds = split_seeds(seed, SIM_ROUNDS);
    let sim_par = par.when(size >= PAR_MIN_SIM_NODES);
    for chunk in round_seeds.chunks(SIM_CHUNK) {
        let failures = par_map(sim_par, chunk, |_, &round_seed| {
            simulate_round(a, b, round_seed)
        });
        if let Some(fail) = failures.into_iter().flatten().next() {
            return fail;
        }
    }

    // --- Phase 2: SAT miter per output, each worker owns its solver. ---
    let outputs: Vec<usize> = (0..a.num_outputs()).collect();
    let sat_par = par.when(outputs.len() > 1 && size >= PAR_MIN_SAT_NODES);
    // Miters are expensive, so the chunk tracks the worker count (double,
    // to absorb per-output cost skew without a hard barrier every few
    // items). Chunking affects how much work runs past the first failing
    // output — never which verdict is returned.
    let sat_chunk = sat_par.threads().max(1) * 2;
    for chunk in outputs.chunks(sat_chunk) {
        let verdicts = par_map(sat_par, chunk, |_, &o| solve_output_miter(a, b, o));
        if let Some(fail) = verdicts.into_iter().flatten().next() {
            return fail;
        }
    }
    EquivResult::Equivalent
}

/// Runs one 64-pattern simulation round; `Some(NotEquivalent)` when a
/// differing output is found. Independent of every other round.
fn simulate_round(a: &Network, b: &Network, round_seed: u64) -> Option<EquivResult> {
    let mut rng = StdRng::seed_from_u64(round_seed);
    let wa: Vec<u64> = (0..a.num_inputs()).map(|_| rng.gen()).collect();
    let wb: Vec<u64> = b
        .input_names()
        .iter()
        .map(|n| match a.input_names().iter().position(|m| m == n) {
            Some(i) => wa[i],
            None => rng.gen(), // input only b knows; value is free
        })
        .collect();
    let ra = a.simulate(&wa);
    let rb = b.simulate(&wb);
    for (o, (x, y)) in ra.iter().zip(&rb).enumerate() {
        if x != y {
            let bit = (x ^ y).trailing_zeros();
            let cex = (0..a.num_inputs())
                .map(|i| (wa[i] >> bit) & 1 == 1)
                .collect();
            return Some(EquivResult::NotEquivalent {
                output: o,
                counterexample: cex,
            });
        }
    }
    None
}

/// Builds and solves the miter for output `o` in a fresh solver:
/// `Some(NotEquivalent)` when the outputs can differ, `None` when proven
/// equal. Self-contained so per-output verdicts (and counterexample
/// models) cannot depend on queries for other outputs — the property
/// that makes the parallel sweep thread-count-invariant.
fn solve_output_miter(a: &Network, b: &Network, o: usize) -> Option<EquivResult> {
    let mut solver = Solver::new();
    // shared input variables, keyed by name, allocated in a stable order
    let mut input_vars: HashMap<String, Var> = HashMap::new();
    for name in a.input_names().iter().chain(b.input_names()) {
        input_vars
            .entry(name.clone())
            .or_insert_with(|| solver.new_var());
    }
    let la = encode_output_cone(a, o, &mut solver, &input_vars);
    let lb = encode_output_cone(b, o, &mut solver, &input_vars);

    // different? two assumption queries: (la & !lb) then (!la & lb)
    for (x, y) in [(la, !lb), (!la, lb)] {
        if solver.solve_with_assumptions(&[x, y]) {
            let cex = a
                .input_names()
                .iter()
                .map(|n| solver.value(input_vars[n]).unwrap_or(false))
                .collect();
            return Some(EquivResult::NotEquivalent {
                output: o,
                counterexample: cex,
            });
        }
    }
    None
}

/// Node ids in the transitive fanin of output `o` (including the output
/// node itself).
fn output_cone(net: &Network, o: usize) -> HashSet<NodeId> {
    let mut cone = HashSet::new();
    let mut stack = vec![net.outputs()[o].1];
    while let Some(id) = stack.pop() {
        if !cone.insert(id) {
            continue;
        }
        match net.node(id) {
            Node::Const(_) | Node::Input(_) => {}
            Node::Not(x) => stack.push(x),
            Node::And(x, y) | Node::Or(x, y) => {
                stack.push(x);
                stack.push(y);
            }
        }
    }
    cone
}

/// Tseitin-encodes the cone of output `o` over shared input variables;
/// returns that output's literal. Restricting the encoding to the cone
/// keeps the per-output miters from re-encoding logic they never query.
fn encode_output_cone(
    net: &Network,
    o: usize,
    solver: &mut Solver,
    inputs: &HashMap<String, Var>,
) -> Lit {
    let cone = output_cone(net, o);
    let mut lit_of: HashMap<esyn_eqn::NodeId, Lit> = HashMap::new();
    let mut const_lit: Option<Lit> = None;
    for id in net.topo_order() {
        if !cone.contains(&id) {
            continue;
        }
        let lit = match net.node(id) {
            Node::Const(v) => {
                let base = *const_lit.get_or_insert_with(|| {
                    let cv = solver.new_var();
                    solver.add_clause(&[Lit::pos(cv)]); // constant TRUE var
                    Lit::pos(cv)
                });
                if v {
                    base
                } else {
                    !base
                }
            }
            Node::Input(idx) => Lit::pos(inputs[net.input_name(idx)]),
            Node::Not(x) => !lit_of[&x],
            Node::And(x, y) => {
                let (lx, ly) = (lit_of[&x], lit_of[&y]);
                let v = solver.new_var();
                let lv = Lit::pos(v);
                solver.add_clause(&[!lv, lx]);
                solver.add_clause(&[!lv, ly]);
                solver.add_clause(&[lv, !lx, !ly]);
                lv
            }
            Node::Or(x, y) => {
                let (lx, ly) = (lit_of[&x], lit_of[&y]);
                let v = solver.new_var();
                let lv = Lit::pos(v);
                solver.add_clause(&[lv, !lx]);
                solver.add_clause(&[lv, !ly]);
                solver.add_clause(&[!lv, lx, ly]);
                lv
            }
        };
        lit_of.insert(id, lit);
    }
    lit_of[&net.outputs()[o].1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use esyn_eqn::parse_eqn;

    #[test]
    fn identical_networks_equivalent() {
        let a = parse_eqn("INORDER = x y;\nOUTORDER = f;\nf = x*y + !x*!y;\n").unwrap();
        assert_eq!(check_equivalence(&a, &a), EquivResult::Equivalent);
    }

    #[test]
    fn demorgan_forms_equivalent() {
        let a = parse_eqn("INORDER = x y;\nOUTORDER = f;\nf = !(x*y);\n").unwrap();
        let b = parse_eqn("INORDER = x y;\nOUTORDER = f;\nf = !x + !y;\n").unwrap();
        assert_eq!(check_equivalence(&a, &b), EquivResult::Equivalent);
    }

    #[test]
    fn different_input_order_equivalent() {
        let a = parse_eqn("INORDER = x y z;\nOUTORDER = f;\nf = x*(y+z);\n").unwrap();
        let b = parse_eqn("INORDER = z y x;\nOUTORDER = f;\nf = x*y + x*z;\n").unwrap();
        assert_eq!(check_equivalence(&a, &b), EquivResult::Equivalent);
    }

    #[test]
    fn inequivalent_with_counterexample() {
        let a = parse_eqn("INORDER = x y;\nOUTORDER = f;\nf = x*y;\n").unwrap();
        let b = parse_eqn("INORDER = x y;\nOUTORDER = f;\nf = x+y;\n").unwrap();
        match check_equivalence(&a, &b) {
            EquivResult::NotEquivalent {
                output,
                counterexample,
            } => {
                assert_eq!(output, 0);
                // verify the counterexample really distinguishes them
                let wa: Vec<u64> = counterexample
                    .iter()
                    .map(|&v| if v { 1 } else { 0 })
                    .collect();
                let ra = a.simulate(&wa)[0] & 1;
                let rb = b.simulate(&wa)[0] & 1;
                assert_ne!(ra, rb);
            }
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn near_equivalent_needs_sat() {
        // Functions differing on exactly one of 2^10 assignments: random
        // simulation will usually miss it; SAT must catch it.
        let inputs = "a b c d e f g h i j";
        let all_and = "a*b*c*d*e*f*g*h*i*j";
        let x = parse_eqn(&format!(
            "INORDER = {inputs};\nOUTORDER = o;\no = {all_and};\n"
        ))
        .unwrap();
        let y = parse_eqn(&format!("INORDER = {inputs};\nOUTORDER = o;\no = 0;\n")).unwrap();
        match check_equivalence(&x, &y) {
            EquivResult::NotEquivalent { counterexample, .. } => {
                assert!(counterexample.iter().all(|&v| v), "only all-ones differs");
            }
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn multi_output_mismatch_reports_index() {
        let a = parse_eqn("INORDER = x y;\nOUTORDER = f g;\nf = x*y;\ng = x+y;\n").unwrap();
        let b = parse_eqn("INORDER = x y;\nOUTORDER = f g;\nf = x*y;\ng = x;\n").unwrap();
        match check_equivalence(&a, &b) {
            EquivResult::NotEquivalent { output, .. } => assert_eq!(output, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn incompatible_output_counts() {
        let a = parse_eqn("INORDER = x;\nOUTORDER = f;\nf = x;\n").unwrap();
        let b = parse_eqn("INORDER = x;\nOUTORDER = f g;\nf = x;\ng = !x;\n").unwrap();
        assert!(matches!(
            check_equivalence(&a, &b),
            EquivResult::Incompatible(_)
        ));
    }

    #[test]
    fn constant_networks() {
        let a = parse_eqn("INORDER = x;\nOUTORDER = f;\nf = x * !x;\n").unwrap();
        let b = parse_eqn("INORDER = x;\nOUTORDER = f;\nf = 0;\n").unwrap();
        assert_eq!(check_equivalence(&a, &b), EquivResult::Equivalent);
    }

    #[test]
    fn xor_associativity_equivalent() {
        let a = parse_eqn(
            "INORDER = x y z;\nOUTORDER = p;\n\
             w1 = (x*!y) + (!x*y);\np = (w1*!z) + (!w1*z);\n",
        )
        .unwrap();
        let b = parse_eqn(
            "INORDER = x y z;\nOUTORDER = p;\n\
             w2 = (y*!z) + (!y*z);\np = (x*!w2) + (!x*w2);\n",
        )
        .unwrap();
        assert_eq!(check_equivalence(&a, &b), EquivResult::Equivalent);
    }
}
