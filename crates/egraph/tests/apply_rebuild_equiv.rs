//! Seeded equivalence property: the staged batched apply
//! ([`esyn_egraph::apply_rules`]) plus the arena-backed rebuild must
//! produce an e-graph *semantically identical* to the naive per-match
//! reference path ([`Rewrite::apply`]) on random rewrite workloads.
//!
//! "Semantically identical" is the label-free [`EGraph::checksum`] plus
//! the e-class count: the naive path materializes transient duplicate
//! e-nodes when canonicalization drifts mid-apply (they consume fresh
//! ids and linger as stale memo entries), so raw id numbering and
//! `total_nodes` legitimately differ between the two paths — but after
//! `rebuild` both represent exactly the same classes and terms.
//!
//! The batched path itself must additionally be *bit*-deterministic
//! across thread counts (the staging fan-out is a pure read of the
//! phase-start e-graph), so across `Parallelism::Fixed(1 | 2 | 4)` —
//! what `ESYN_THREADS=1/2/4` maps to — we hold it to the stronger
//! standard: identical node totals too.
//!
//! The loop drives `apply_rules` directly rather than through `Runner`
//! so no node/iteration limit can bind differently between the two
//! paths mid-iteration.

use esyn_egraph::{apply_rules, EGraph, RecExpr, Rewrite, SymbolLang};
use esyn_par::Parallelism;

/// splitmix64: tiny, seedable, no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn rule_pool() -> Vec<Rewrite<SymbolLang>> {
    let specs: &[(&str, &str, &str)] = &[
        ("comm-add", "(+ ?a ?b)", "(+ ?b ?a)"),
        ("comm-mul", "(* ?a ?b)", "(* ?b ?a)"),
        ("assoc-add", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))"),
        ("assoc-mul", "(* (* ?a ?b) ?c)", "(* ?a (* ?b ?c))"),
        ("distribute", "(* ?a (+ ?b ?c))", "(+ (* ?a ?b) (* ?a ?c))"),
        ("factor", "(+ (* ?a ?b) (* ?a ?c))", "(* ?a (+ ?b ?c))"),
        ("add-zero", "(+ ?a zero)", "?a"),
        ("mul-one", "(* ?a one)", "?a"),
        ("not-not", "(! (! ?a))", "?a"),
    ];
    specs
        .iter()
        .map(|(n, l, r)| Rewrite::parse(n, l, r).unwrap())
        .collect()
}

/// A random expression as an s-string: binary `+`/`*`, unary `!`,
/// leaves drawn from a small alphabet plus the identity constants.
fn random_expr(rng: &mut Rng, depth: usize) -> String {
    const LEAVES: &[&str] = &["a", "b", "c", "d", "zero", "one"];
    if depth == 0 || rng.below(5) == 0 {
        return LEAVES[rng.below(LEAVES.len())].to_owned();
    }
    match rng.below(5) {
        0 | 1 => format!(
            "(+ {} {})",
            random_expr(rng, depth - 1),
            random_expr(rng, depth - 1)
        ),
        2 | 3 => format!(
            "(* {} {})",
            random_expr(rng, depth - 1),
            random_expr(rng, depth - 1)
        ),
        _ => format!("(! {})", random_expr(rng, depth - 1)),
    }
}

fn fresh_graph(expr: &RecExpr<SymbolLang>) -> EGraph<SymbolLang> {
    let mut g = EGraph::new();
    g.add_expr(expr);
    g.rebuild();
    g
}

#[test]
fn batched_apply_matches_naive_reference_on_random_workloads() {
    let pool = rule_pool();
    for seed in 0..24u64 {
        let mut rng = Rng(0xE5F1_0000 + seed);
        // A random subset of at least two rules, in pool order (the
        // commit phase is order-sensitive by design).
        let rules: Vec<Rewrite<SymbolLang>> = loop {
            let picked: Vec<_> = pool.iter().filter(|_| rng.below(2) == 0).cloned().collect();
            if picked.len() >= 2 {
                break picked;
            }
        };
        let expr: RecExpr<SymbolLang> = random_expr(&mut rng, 5).parse().unwrap();

        let mut naive = fresh_graph(&expr);
        let mut batched: Vec<EGraph<SymbolLang>> = (0..3).map(|_| fresh_graph(&expr)).collect();
        let pars = [
            Parallelism::Fixed(1),
            Parallelism::Fixed(2),
            Parallelism::Fixed(4),
        ];

        // Four iterations keeps the largest workloads around a few
        // thousand nodes — no limit machinery, so nothing can bind
        // differently between the paths.
        for iter in 0..4 {
            let matches: Vec<_> = rules.iter().map(|r| r.search(&naive)).collect();
            for (r, m) in rules.iter().zip(&matches) {
                r.apply(&mut naive, m);
            }
            naive.rebuild();

            for (g, par) in batched.iter_mut().zip(pars) {
                let matches: Vec<_> = rules.iter().map(|r| r.search(g)).collect();
                apply_rules(g, &rules, &matches, par);
                g.rebuild();
            }

            // The batched path is bit-deterministic across thread
            // counts: same node totals, not just the same quotient.
            for g in &batched[1..] {
                assert_eq!(
                    (g.checksum(), g.num_classes(), g.total_nodes()),
                    (
                        batched[0].checksum(),
                        batched[0].num_classes(),
                        batched[0].total_nodes()
                    ),
                    "seed {seed} iter {iter}: thread-count divergence"
                );
            }
            // Against naive: semantic equality (see module docs).
            assert_eq!(
                (batched[0].checksum(), batched[0].num_classes()),
                (naive.checksum(), naive.num_classes()),
                "seed {seed} iter {iter}: batched != naive (rules {:?}, expr {expr})",
                rules.iter().map(|r| r.name.as_str()).collect::<Vec<_>>(),
            );
        }
    }
}
