//! Seeded-loop property tests for `RecExpr` parse/display round-trips:
//! random nested expressions survive `display → parse → display`
//! unchanged, whitespace never matters, and parse errors carry token
//! positions. Each case derives from a per-iteration seed, so a failure
//! report reproduces deterministically.

use esyn_egraph::{Id, RecExpr, SymbolLang};
use rand::{Rng, SeedableRng, StdRng};

const OPS: [&str; 6] = ["+", "*", "f", "g", "neg", "select"];
const LEAVES: [&str; 5] = ["x", "y", "z", "a0", "b_1"];

/// A random expression of up to `max_nodes` nodes; later nodes may share
/// earlier nodes as children (a DAG, which display expands to a tree).
fn random_expr(rng: &mut StdRng, max_nodes: usize) -> RecExpr<SymbolLang> {
    let mut e = RecExpr::new();
    let n = rng.gen_range(1..=max_nodes);
    for i in 0..n {
        let arity = if i == 0 { 0 } else { rng.gen_range(0..=3usize) };
        let node = if arity == 0 {
            SymbolLang::leaf(LEAVES[rng.gen_range(0..LEAVES.len())])
        } else {
            let children: Vec<Id> = (0..arity).map(|_| Id::from(rng.gen_range(0..i))).collect();
            SymbolLang::new(OPS[rng.gen_range(0..OPS.len())], children)
        };
        e.add(node);
    }
    e
}

/// Re-tokenizes `text` with random whitespace between tokens (including
/// none where legal).
fn rewhitespace(rng: &mut StdRng, text: &str) -> String {
    const WS: [&str; 4] = ["", " ", "\t ", "\n  "];
    let mut out = String::new();
    for c in text.chars() {
        match c {
            '(' | ')' => {
                out.push_str(WS[rng.gen_range(0..WS.len())]);
                out.push(c);
                out.push_str(WS[rng.gen_range(0..WS.len())]);
            }
            ' ' => out.push_str(WS[rng.gen_range(1..WS.len())]),
            _ => out.push(c),
        }
    }
    out
}

#[test]
fn display_parse_display_is_identity() {
    for case in 0u64..300 {
        let mut rng = StdRng::seed_from_u64(0xEC5E_0000 + case);
        let expr = random_expr(&mut rng, 12);
        let text = expr.to_string();
        let parsed: RecExpr<SymbolLang> = text
            .parse()
            .unwrap_or_else(|e| panic!("case {case}: `{text}` failed to parse: {e}"));
        assert_eq!(parsed.to_string(), text, "case {case}");
    }
}

#[test]
fn whitespace_is_insignificant() {
    for case in 0u64..300 {
        let mut rng = StdRng::seed_from_u64(0xEC5E_1000 + case);
        let expr = random_expr(&mut rng, 10);
        let text = expr.to_string();
        let noisy = rewhitespace(&mut rng, &text);
        let parsed: RecExpr<SymbolLang> = noisy
            .parse()
            .unwrap_or_else(|e| panic!("case {case}: `{noisy}` failed to parse: {e}"));
        assert_eq!(parsed.to_string(), text, "case {case}: `{noisy}`");
    }
}

#[test]
fn leaf_only_expressions_roundtrip() {
    for case in 0u64..100 {
        let mut rng = StdRng::seed_from_u64(0xEC5E_2000 + case);
        let leaf = LEAVES[rng.gen_range(0..LEAVES.len())];
        let parsed: RecExpr<SymbolLang> = leaf.parse().unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed.to_string(), leaf);
        // ...and with noise around it.
        let noisy = format!("  {leaf}\n");
        let parsed: RecExpr<SymbolLang> = noisy.parse().unwrap();
        assert_eq!(parsed.to_string(), leaf);
    }
}

#[test]
fn corrupted_text_fails_with_a_position() {
    // Deterministic corruptions of valid expressions must fail, and the
    // error must point inside the input (or report end-of-input).
    for case in 0u64..200 {
        let mut rng = StdRng::seed_from_u64(0xEC5E_3000 + case);
        let expr = random_expr(&mut rng, 10);
        let text = expr.to_string();
        if !text.contains('(') {
            continue; // a bare leaf has no bracket to corrupt
        }
        let (corrupted, expect_pos) = match rng.gen_range(0..3u32) {
            // Drop the final `)` → unbalanced `(`.
            0 => (text[..text.len() - 1].to_owned(), true),
            // Trailing garbage after a complete expression.
            1 => (format!("{text} )"), true),
            // Stray `)` in front.
            _ => (format!(") {text}"), true),
        };
        let err = corrupted
            .parse::<RecExpr<SymbolLang>>()
            .expect_err(&format!("case {case}: `{corrupted}` must not parse"));
        if expect_pos {
            let pos = err
                .position
                .unwrap_or_else(|| panic!("case {case}: error lacks a position: {err}"));
            assert!(pos < corrupted.len(), "case {case}: {pos} out of range");
            assert!(err.to_string().contains("at byte"), "case {case}: {err}");
        }
    }
}
