//! A global, deterministic string interner and the [`Symbol`] handle.
//!
//! Operators and pattern variables are hot in e-matching: every
//! hash-cons lookup hashes the operator and every substitution lookup
//! compares variable names. Interning turns both into `u32` operations —
//! a [`Symbol`] is a dense handle into a process-global table, assigned
//! in first-intern order (deterministic for a deterministic program, as
//! everything in this workspace is).

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string. Cheap to copy, hash and compare (a `u32`), and
/// resolvable back to its text via [`Symbol::as_str`].
///
/// Ordering (`PartialOrd`/`Ord`) is by intern id — i.e. first-intern
/// order, **not** lexicographic. That is stable within a run (the only
/// thing determinism needs) but callers that want alphabetical output
/// must sort by [`Symbol::as_str`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

struct Interner {
    by_name: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            by_name: HashMap::new(),
            names: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `name`, returning its symbol. Interning the same string
    /// twice returns the same handle.
    pub fn intern(name: &str) -> Symbol {
        let mut i = interner().lock().expect("interner lock");
        if let Some(&id) = i.by_name.get(name) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(i.names.len()).expect("interner full");
        i.names.push(leaked);
        i.by_name.insert(leaked, id);
        Symbol(id)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        interner().lock().expect("interner lock").names[self.0 as usize]
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a1 = Symbol::intern("egraph-symbol-alpha");
        let a2 = Symbol::intern("egraph-symbol-alpha");
        let b = Symbol::intern("egraph-symbol-beta");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(a1.as_str(), "egraph-symbol-alpha");
        assert_eq!(format!("{b}"), "egraph-symbol-beta");
        assert_eq!(format!("{b:?}"), "egraph-symbol-beta");
    }

    #[test]
    fn from_impls_intern() {
        let a: Symbol = "egraph-symbol-from".into();
        let b: Symbol = String::from("egraph-symbol-from").into();
        assert_eq!(a, b);
    }
}
