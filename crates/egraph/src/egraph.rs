//! The e-graph data structure: hash-consed e-nodes, e-classes, and
//! deferred congruence-closure maintenance (`rebuild`), following the
//! algorithm of the egg paper (POPL 2021).

use crate::analysis::Analysis;
use crate::fxhash::{FxHashMap, FxHasher};
use crate::language::{Id, Language, OpKey, RecExpr};
use crate::unionfind::UnionFind;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Index of an e-node in the e-graph's node arena (see [`EGraph`]: every
/// non-leaf e-node is stored exactly once, contiguously; parent lists and
/// the rebuild worklists refer to nodes by arena index instead of cloning
/// `(L, Id)` pairs around).
pub(crate) type NodeIdx = u32;

/// An equivalence class of e-nodes.
///
/// `nodes` holds the e-nodes belonging to this class. Between
/// [`EGraph::rebuild`] calls the stored children may be stale (point at
/// non-canonical ids); after a rebuild they are canonical, sorted and
/// deduplicated.
#[derive(Clone, Debug)]
pub struct EClass<L, D> {
    /// The canonical id of this class.
    pub id: Id,
    /// E-nodes in this class.
    pub(crate) nodes: Vec<L>,
    /// Analysis data for this class.
    pub data: D,
    /// Arena indices of the parent e-nodes (e-nodes with a child in this
    /// class). Invariant: sorted ascending and deduplicated — arena
    /// indices are issued in increasing order, so [`EGraph::add`] can
    /// append with a `last()` check, and merges keep the invariant with a
    /// linear sorted merge.
    pub(crate) parents: Vec<NodeIdx>,
}

impl<L: Language, D> EClass<L, D> {
    /// The e-nodes in this class.
    pub fn nodes(&self) -> &[L] {
        &self.nodes
    }

    /// Number of e-nodes in this class.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the class holds no e-nodes (never the case for classes
    /// observed through [`EGraph::classes`]).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over the e-nodes in this class.
    pub fn iter(&self) -> std::slice::Iter<'_, L> {
        self.nodes.iter()
    }
}

/// A hash-consed e-graph over language `L` with analysis `N`.
///
/// See the [crate docs](crate) for an overview and example.
pub struct EGraph<L: Language, N: Analysis<L> = ()> {
    /// The analysis instance (rule-accessible state lives here).
    pub analysis: N,
    unionfind: UnionFind,
    memo: FxHashMap<L, Id>,
    classes: Vec<Option<EClass<L, N::Data>>>,
    /// Operator index: for every [`OpKey`], the e-classes containing at
    /// least one e-node with that operator. Kept exact (canonical,
    /// sorted, deduplicated) by [`EGraph::rebuild`]; entries appended by
    /// [`EGraph::add`] between rebuilds may be stale, so readers
    /// canonicalize (see [`EGraph::classes_with_op`]).
    classes_by_op: FxHashMap<OpKey, Vec<Id>>,
    /// Arena of every non-leaf e-node, as originally added (children are
    /// canonical as of add time; re-canonicalize through the union-find
    /// when reading). Leaves have no children, hence no congruence
    /// obligations, and stay out of the arena.
    arena: Vec<L>,
    /// `arena_class[i]` = the class `arena[i]` was added to (canonicalize
    /// through the union-find when reading).
    arena_class: Vec<Id>,
    /// Worklist of arena indices whose node must be re-canonicalized and
    /// re-hashed (congruence repair). Deduplicated at insertion via
    /// `in_pending`: a node whose children merged twice between rebuilds
    /// is repaired once, with the latest union-find state.
    pending: Vec<NodeIdx>,
    in_pending: Vec<bool>,
    /// Worklist of arena indices whose analysis data must be re-made,
    /// deduplicated like `pending`.
    analysis_pending: Vec<NodeIdx>,
    in_analysis_pending: Vec<bool>,
    clean: bool,
}

impl<L: Language, N: Analysis<L> + Default> Default for EGraph<L, N> {
    fn default() -> Self {
        Self::with_analysis(N::default())
    }
}

impl<L: Language, N: Analysis<L> + Default> EGraph<L, N> {
    /// Creates an empty e-graph with a default analysis.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<L: Language, N: Analysis<L>> EGraph<L, N> {
    /// Creates an empty e-graph with the given analysis instance.
    pub fn with_analysis(analysis: N) -> Self {
        EGraph {
            analysis,
            unionfind: UnionFind::new(),
            memo: FxHashMap::default(),
            classes: Vec::new(),
            classes_by_op: FxHashMap::default(),
            arena: Vec::new(),
            arena_class: Vec::new(),
            pending: Vec::new(),
            in_pending: Vec::new(),
            analysis_pending: Vec::new(),
            in_analysis_pending: Vec::new(),
            clean: true,
        }
    }

    /// Number of e-classes.
    pub fn num_classes(&self) -> usize {
        self.classes.iter().filter(|c| c.is_some()).count()
    }

    /// Number of distinct (hash-consed) e-nodes. Between rebuilds this may
    /// slightly overcount because stale memo entries linger, matching egg's
    /// behaviour for limit checks.
    pub fn total_nodes(&self) -> usize {
        self.memo.len()
    }

    /// True when no e-nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }

    /// The canonical id of `id`.
    pub fn find(&self, id: Id) -> Id {
        self.unionfind.find(id)
    }

    /// Iterates over all canonical e-classes in ascending id order
    /// (deterministic).
    pub fn classes(&self) -> impl Iterator<Item = &EClass<L, N::Data>> {
        self.classes.iter().filter_map(Option::as_ref)
    }

    /// The e-class of (the canonical form of) `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never issued by this e-graph.
    pub fn class(&self, id: Id) -> &EClass<L, N::Data> {
        let id = self.find(id);
        self.classes[usize::from(id)]
            .as_ref()
            .expect("canonical id must have a class")
    }

    /// Canonicalizes the children of `enode`.
    fn canonicalize(&mut self, enode: &L) -> L {
        enode.map_children(|c| self.unionfind.find_mut(c))
    }

    /// Looks up an e-node (children need not be canonical); returns its
    /// class if present.
    pub fn lookup(&self, enode: &L) -> Option<Id> {
        let canon = enode.map_children(|c| self.unionfind.find(c));
        self.memo.get(&canon).map(|&id| self.find(id))
    }

    /// Memo probe for a node whose children the caller has already
    /// canonicalized (the apply stage builds such nodes in scratch
    /// buffers; skipping the re-canonicalizing walk of [`EGraph::lookup`]
    /// keeps staging allocation-free).
    pub(crate) fn lookup_canonical(&self, canon: &L) -> Option<Id> {
        self.memo.get(canon).map(|&id| self.find(id))
    }

    /// Adds `enode` (hash-consed); returns the id of its e-class.
    pub fn add(&mut self, enode: L) -> Id {
        let canon = self.canonicalize(&enode);
        if let Some(&existing) = self.memo.get(&canon) {
            return self.unionfind.find_mut(existing);
        }
        let id = self.unionfind.make_set();
        debug_assert_eq!(usize::from(id), self.classes.len());
        let data = N::make(self, &canon);
        if !canon.children().is_empty() {
            let idx = NodeIdx::try_from(self.arena.len()).expect("arena index overflow");
            self.arena.push(canon.clone());
            self.arena_class.push(id);
            self.in_pending.push(false);
            self.in_analysis_pending.push(false);
            for &child in canon.children() {
                let child_class = self.classes[usize::from(child)]
                    .as_mut()
                    .expect("children must be canonical classes");
                // A repeated child (e.g. `f(a, a)`) pushes the same fresh
                // index back-to-back; the `last()` check keeps the parent
                // list deduplicated, and since `idx` exceeds every earlier
                // index, appending preserves sortedness.
                if child_class.parents.last() != Some(&idx) {
                    child_class.parents.push(idx);
                }
            }
        }
        self.classes.push(Some(EClass {
            id,
            nodes: vec![canon.clone()],
            data,
            parents: Vec::new(),
        }));
        self.classes_by_op
            .entry(canon.op_key())
            .or_default()
            .push(id);
        self.memo.insert(canon, id);
        N::modify(self, id);
        id
    }

    /// Adds a whole [`RecExpr`], returning the e-class of its root.
    ///
    /// # Panics
    ///
    /// Panics on an empty expression.
    pub fn add_expr(&mut self, expr: &RecExpr<L>) -> Id {
        let nodes = expr.as_ref();
        assert!(!nodes.is_empty(), "cannot add an empty RecExpr");
        let mut ids: Vec<Id> = Vec::with_capacity(nodes.len());
        for node in nodes {
            let remapped = node.map_children(|c| ids[usize::from(c)]);
            ids.push(self.add(remapped));
        }
        *ids.last().unwrap()
    }

    /// Unions the classes of `a` and `b`; returns `(canonical_id, changed)`.
    pub fn union(&mut self, a: Id, b: Id) -> (Id, bool) {
        let a = self.unionfind.find_mut(a);
        let b = self.unionfind.find_mut(b);
        if a == b {
            return (a, false);
        }
        self.clean = false;
        let (keep, merge) = self.unionfind.union_pair(a, b);

        let merged = self.classes[usize::from(merge)]
            .take()
            .expect("merged class must exist");
        // Parents of the absorbed class must be re-canonicalized. Dedup
        // at insertion: an index already queued will be repaired with the
        // post-union find state anyway, so a second entry is pure churn.
        for &idx in &merged.parents {
            if !self.in_pending[idx as usize] {
                self.in_pending[idx as usize] = true;
                self.pending.push(idx);
            }
        }

        let kept = self.classes[usize::from(keep)]
            .as_mut()
            .expect("kept class must exist");
        let (a_changed, b_changed) = self.analysis.merge(&mut kept.data, merged.data);
        if a_changed {
            // Data of the kept class changed: its existing parents must
            // re-make their data.
            for &idx in &kept.parents {
                if !self.in_analysis_pending[idx as usize] {
                    self.in_analysis_pending[idx as usize] = true;
                    self.analysis_pending.push(idx);
                }
            }
        }
        if b_changed {
            for &idx in &merged.parents {
                if !self.in_analysis_pending[idx as usize] {
                    self.in_analysis_pending[idx as usize] = true;
                    self.analysis_pending.push(idx);
                }
            }
        }
        kept.nodes.extend(merged.nodes);
        merge_sorted_dedup(&mut kept.parents, merged.parents);
        N::modify(self, keep);
        (keep, true)
    }

    /// Restores the congruence invariant and refreshes analysis data.
    ///
    /// Must be called after a batch of [`EGraph::union`]s before searching
    /// patterns again; [`crate::Runner`] does this automatically each
    /// iteration. Returns the number of unions performed during repair.
    ///
    /// The worklists hold deduplicated arena indices and are drained in
    /// batches: each batch is snapshotted with a buffer swap, every entry
    /// is canonicalized exactly once against the then-current union-find,
    /// and repairs discovered mid-batch queue into the next batch instead
    /// of being re-popped and re-probed entry by entry.
    pub fn rebuild(&mut self) -> usize {
        let mut repairs = 0;
        let mut batch: Vec<NodeIdx> = Vec::new();
        while !self.pending.is_empty() || !self.analysis_pending.is_empty() {
            while !self.pending.is_empty() {
                std::mem::swap(&mut batch, &mut self.pending);
                for i in 0..batch.len() {
                    let idx = batch[i];
                    self.in_pending[idx as usize] = false;
                    let node = self.arena[idx as usize].clone();
                    let canon = node.map_children(|c| self.unionfind.find_mut(c));
                    let class = self.unionfind.find_mut(self.arena_class[idx as usize]);
                    if let Some(old) = self.memo.insert(canon, class) {
                        let (_, changed) = self.union(old, class);
                        if changed {
                            repairs += 1;
                        }
                    }
                }
                batch.clear();
            }
            while !self.analysis_pending.is_empty() {
                std::mem::swap(&mut batch, &mut self.analysis_pending);
                for i in 0..batch.len() {
                    let idx = batch[i];
                    self.in_analysis_pending[idx as usize] = false;
                    let node = self.arena[idx as usize].clone();
                    let canon = node.map_children(|c| self.unionfind.find_mut(c));
                    // The node may have been merged away; its class is
                    // still valid through find.
                    let class_id = self.unionfind.find_mut(self.arena_class[idx as usize]);
                    let node_data = N::make(self, &canon);
                    let eclass = self.classes[usize::from(class_id)]
                        .as_mut()
                        .expect("class must exist");
                    let (changed, _) = self.analysis.merge(&mut eclass.data, node_data);
                    if changed {
                        for &p in &eclass.parents {
                            if !self.in_analysis_pending[p as usize] {
                                self.in_analysis_pending[p as usize] = true;
                                self.analysis_pending.push(p);
                            }
                        }
                        N::modify(self, class_id);
                    }
                }
                batch.clear();
            }
        }
        self.rebuild_classes();
        self.clean = true;
        repairs
    }

    fn rebuild_classes(&mut self) {
        // Canonicalize, sort and dedup every class's node list.
        for slot in &mut self.classes {
            let Some(class) = slot else { continue };
            for node in &mut class.nodes {
                for c in node.children_mut() {
                    *c = self.unionfind.find(*c);
                }
            }
            class.nodes.sort();
            class.nodes.dedup();
        }
        // Re-derive the operator index from the canonical classes. The
        // sweep above already touches every e-node, so this keeps the
        // index exact at no extra asymptotic cost; vectors stay allocated
        // across rebuilds. Ascending class order makes every entry list
        // sorted, so the `last()` check is a full dedup.
        for ids in self.classes_by_op.values_mut() {
            ids.clear();
        }
        let classes_by_op = &mut self.classes_by_op;
        for class in self.classes.iter().filter_map(Option::as_ref) {
            for node in &class.nodes {
                let ids = classes_by_op.entry(node.op_key()).or_default();
                if ids.last() != Some(&class.id) {
                    ids.push(class.id);
                }
            }
        }
    }

    /// The e-classes containing at least one e-node whose operator has
    /// key `key` — the candidate set indexed e-matching starts from.
    ///
    /// On a clean e-graph (see [`EGraph::is_clean`]) the returned ids are
    /// canonical, sorted and exact. Between rebuilds the list may contain
    /// stale or duplicate ids (never miss a class): callers must map ids
    /// through [`EGraph::find`] and dedup.
    pub fn classes_with_op(&self, key: OpKey) -> &[Id] {
        self.classes_by_op.get(&key).map_or(&[], Vec::as_slice)
    }

    /// True when the e-graph is congruent (no pending repairs).
    pub fn is_clean(&self) -> bool {
        self.clean
    }

    /// A deterministic structural checksum of a clean e-graph.
    ///
    /// The checksum is *label-free*: it hashes the quotient graph (class
    /// contents and the child-class relation) through three rounds of
    /// Weisfeiler–Leman-style refinement and combines the per-class
    /// hashes order-independently, so two e-graphs that represent the
    /// same classes of terms checksum equal even when their internal id
    /// numbering differs (e.g. the batched apply path skips no-op
    /// instantiations that the naive per-match path materializes as
    /// transient nodes, shifting fresh ids without changing what is
    /// represented). Operators are hashed through [`Language::op_str`],
    /// not interner handles, so the value is stable across processes —
    /// CI pins a golden checksum for a registry circuit.
    ///
    /// # Panics
    ///
    /// Panics if the e-graph is not clean (call [`EGraph::rebuild`]).
    pub fn checksum(&self) -> u64 {
        assert!(self.clean, "checksum requires a clean (rebuilt) e-graph");
        // Dense position of every canonical class id.
        let mut pos: Vec<usize> = vec![usize::MAX; self.classes.len()];
        let mut n_classes = 0usize;
        for class in self.classes() {
            pos[usize::from(class.id)] = n_classes;
            n_classes += 1;
        }
        // Round 0: hash each class's multiset of (op, arity).
        let hash_class = |prev: Option<&[u64]>, class: &EClass<L, N::Data>| -> u64 {
            let mut fps: Vec<u64> = class
                .nodes
                .iter()
                .map(|node| {
                    let mut h = FxHasher::default();
                    node.op_str().hash(&mut h);
                    node.children().len().hash(&mut h);
                    if let Some(prev) = prev {
                        for &c in node.children() {
                            prev[pos[usize::from(c)]].hash(&mut h);
                        }
                    }
                    h.finish()
                })
                .collect();
            fps.sort_unstable();
            let mut h = FxHasher::default();
            for fp in &fps {
                fp.hash(&mut h);
            }
            h.finish()
        };
        let mut hashes: Vec<u64> = self.classes().map(|c| hash_class(None, c)).collect();
        for _round in 0..3 {
            let next: Vec<u64> = self
                .classes()
                .map(|c| hash_class(Some(&hashes), c))
                .collect();
            hashes = next;
        }
        hashes.sort_unstable();
        let mut acc: u64 = 0xcbf2_9ce4_8422_2325 ^ (n_classes as u64);
        for h in hashes {
            acc = acc.rotate_left(23).wrapping_mul(0x0100_0000_01b3) ^ h;
        }
        acc
    }

    /// Extracts any concrete expression represented by class `id`
    /// (an arbitrary but deterministic choice; mainly for tests).
    ///
    /// # Panics
    ///
    /// Panics if the e-graph is not clean, or on a malformed e-graph where
    /// some class has no extractable node.
    pub fn id_to_expr(&self, id: Id) -> RecExpr<L> {
        let (_, expr) = crate::extract::Extractor::new(self, crate::extract::AstSize)
            .find_best(id)
            .expect("class must be extractable");
        expr
    }

    /// Checks that two expressions are represented in the same e-class.
    pub fn equivs(&self, a: &RecExpr<L>, b: &RecExpr<L>) -> bool {
        let (Some(ia), Some(ib)) = (self.lookup_expr(a), self.lookup_expr(b)) else {
            return false;
        };
        ia == ib
    }

    /// Looks up a whole expression without adding anything; `None` if any
    /// node along the way is absent.
    pub fn lookup_expr(&self, expr: &RecExpr<L>) -> Option<Id> {
        let nodes = expr.as_ref();
        let mut ids: Vec<Id> = Vec::with_capacity(nodes.len());
        for node in nodes {
            let remapped = node.map_children(|c| ids[usize::from(c)]);
            ids.push(self.lookup(&remapped)?);
        }
        ids.last().copied()
    }
}

/// Merges sorted, deduplicated `src` into sorted, deduplicated `dst`,
/// keeping the result sorted and deduplicated. The common cases — one
/// side empty, or disjoint ranges (a newer class's parents all have
/// larger arena indices) — are O(1)/memcpy; otherwise a two-pointer
/// merge runs in linear time.
fn merge_sorted_dedup(dst: &mut Vec<NodeIdx>, src: Vec<NodeIdx>) {
    if src.is_empty() {
        return;
    }
    if dst.is_empty() {
        *dst = src;
        return;
    }
    if src[0] > *dst.last().unwrap() {
        dst.extend(src);
        return;
    }
    let old = std::mem::replace(dst, Vec::with_capacity(dst.len() + src.len()));
    let (mut a, mut b) = (old.into_iter().peekable(), src.into_iter().peekable());
    loop {
        match (a.peek(), b.peek()) {
            (Some(&x), Some(&y)) => {
                if x < y {
                    dst.push(x);
                    a.next();
                } else if y < x {
                    dst.push(y);
                    b.next();
                } else {
                    dst.push(x);
                    a.next();
                    b.next();
                }
            }
            (Some(_), None) => {
                dst.extend(a);
                break;
            }
            (None, Some(_)) => {
                dst.extend(b);
                break;
            }
            (None, None) => break,
        }
    }
}

impl<L: Language, N: Analysis<L>> fmt::Debug for EGraph<L, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EGraph {{ classes: {}, nodes: {} }}",
            self.num_classes(),
            self.total_nodes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::SymbolLang;

    fn leaf(g: &mut EGraph<SymbolLang>, name: &str) -> Id {
        g.add(SymbolLang::leaf(name))
    }

    #[test]
    fn add_hash_conses() {
        let mut g = EGraph::<SymbolLang>::new();
        let x1 = leaf(&mut g, "x");
        let x2 = leaf(&mut g, "x");
        assert_eq!(x1, x2);
        assert_eq!(g.total_nodes(), 1);
        assert_eq!(g.num_classes(), 1);
    }

    #[test]
    fn union_merges_classes() {
        let mut g = EGraph::<SymbolLang>::new();
        let x = leaf(&mut g, "x");
        let y = leaf(&mut g, "y");
        assert_ne!(g.find(x), g.find(y));
        let (root, changed) = g.union(x, y);
        assert!(changed);
        g.rebuild();
        assert_eq!(g.find(x), g.find(y));
        assert_eq!(g.find(x), root);
        assert_eq!(g.num_classes(), 1);
        assert_eq!(g.class(x).len(), 2);
    }

    #[test]
    fn congruence_closure_via_rebuild() {
        // f(x), f(y): union x=y must make f(x) = f(y) after rebuild.
        let mut g = EGraph::<SymbolLang>::new();
        let x = leaf(&mut g, "x");
        let y = leaf(&mut g, "y");
        let fx = g.add(SymbolLang::new("f", vec![x]));
        let fy = g.add(SymbolLang::new("f", vec![y]));
        assert_ne!(g.find(fx), g.find(fy));
        g.union(x, y);
        g.rebuild();
        assert_eq!(g.find(fx), g.find(fy), "congruence must propagate");
    }

    #[test]
    fn congruence_cascades_upward() {
        // g(f(x)), g(f(y)): one union at the leaves collapses two levels.
        let mut g = EGraph::<SymbolLang>::new();
        let x = leaf(&mut g, "x");
        let y = leaf(&mut g, "y");
        let fx = g.add(SymbolLang::new("f", vec![x]));
        let fy = g.add(SymbolLang::new("f", vec![y]));
        let gfx = g.add(SymbolLang::new("g", vec![fx]));
        let gfy = g.add(SymbolLang::new("g", vec![fy]));
        g.union(x, y);
        g.rebuild();
        assert_eq!(g.find(gfx), g.find(gfy));
        assert!(g.is_clean());
    }

    #[test]
    fn add_expr_and_lookup_expr() {
        let mut g = EGraph::<SymbolLang>::new();
        let e: RecExpr<SymbolLang> = "(+ (* x y) z)".parse().unwrap();
        let id = g.add_expr(&e);
        assert_eq!(g.lookup_expr(&e), Some(id));
        let missing: RecExpr<SymbolLang> = "(- a b)".parse().unwrap();
        assert_eq!(g.lookup_expr(&missing), None);
    }

    #[test]
    fn equivs_after_union() {
        let mut g = EGraph::<SymbolLang>::new();
        let a: RecExpr<SymbolLang> = "(+ x y)".parse().unwrap();
        let b: RecExpr<SymbolLang> = "(+ y x)".parse().unwrap();
        let ia = g.add_expr(&a);
        let ib = g.add_expr(&b);
        assert!(!g.equivs(&a, &b));
        g.union(ia, ib);
        g.rebuild();
        assert!(g.equivs(&a, &b));
    }

    #[test]
    fn self_union_is_noop() {
        let mut g = EGraph::<SymbolLang>::new();
        let x = leaf(&mut g, "x");
        let (_, changed) = g.union(x, x);
        assert!(!changed);
        assert!(g.is_clean());
    }

    #[test]
    fn rebuild_dedups_class_nodes() {
        // f(x) and f(y) become identical nodes after x=y; the merged class
        // must contain one copy.
        let mut g = EGraph::<SymbolLang>::new();
        let x = leaf(&mut g, "x");
        let y = leaf(&mut g, "y");
        let fx = g.add(SymbolLang::new("f", vec![x]));
        let _fy = g.add(SymbolLang::new("f", vec![y]));
        g.union(x, y);
        g.rebuild();
        assert_eq!(g.class(fx).len(), 1);
    }

    #[test]
    fn diamond_congruence_worklist_is_deduplicated() {
        // Diamond: two parents f(x, y) and g(x, y) over the same two
        // leaves. Unioning the leaves queues each parent exactly once;
        // a second union touching the merged class must not re-queue
        // already-pending parents (the old worklist carried unfiltered
        // clones of the merged class's whole parent list).
        let mut g = EGraph::<SymbolLang>::new();
        let w = leaf(&mut g, "w"); // id 0: kept root of the second union
        let x = leaf(&mut g, "x");
        let y = leaf(&mut g, "y");
        let _f = g.add(SymbolLang::new("f", vec![x, y]));
        let _h = g.add(SymbolLang::new("g", vec![x, y]));
        g.union(x, y);
        assert_eq!(g.pending.len(), 2, "one entry per distinct parent node");
        // The kept class's parent list is a sorted merge, not a blind
        // concatenation of two identical lists.
        assert_eq!(g.class(x).parents.len(), 2);
        g.union(x, w);
        assert_eq!(
            g.pending.len(),
            2,
            "already-queued parents must not be re-queued"
        );
        g.rebuild();
        assert!(g.pending.is_empty());
        assert_eq!(g.find(x), g.find(w));
    }

    #[test]
    fn repeated_child_parent_list_is_deduplicated() {
        let mut g = EGraph::<SymbolLang>::new();
        let x = leaf(&mut g, "x");
        let _fxx = g.add(SymbolLang::new("f", vec![x, x]));
        assert_eq!(
            g.class(x).parents.len(),
            1,
            "f(x, x) is one parent of x, not two"
        );
    }

    #[test]
    fn checksum_is_label_free_and_discriminating() {
        let mut a = EGraph::<SymbolLang>::new();
        a.add_expr(&"(f (g x) y)".parse().unwrap());
        a.rebuild();
        // Same terms added in a different order: different internal ids,
        // same represented classes.
        let mut b = EGraph::<SymbolLang>::new();
        b.add_expr(&"y".parse().unwrap());
        b.add_expr(&"(f (g x) y)".parse().unwrap());
        b.rebuild();
        assert_eq!(a.checksum(), b.checksum());
        // A union changes what is represented.
        let mut c = EGraph::<SymbolLang>::new();
        let root = c.add_expr(&"(f (g x) y)".parse().unwrap());
        let y = c.lookup(&SymbolLang::leaf("y")).unwrap();
        c.union(root, y);
        c.rebuild();
        assert_ne!(a.checksum(), c.checksum());
    }

    #[test]
    #[should_panic(expected = "clean")]
    fn checksum_requires_clean_egraph() {
        let mut g = EGraph::<SymbolLang>::new();
        let x = leaf(&mut g, "x");
        let y = leaf(&mut g, "y");
        g.union(x, y);
        let _ = g.checksum();
    }

    #[test]
    fn id_to_expr_roundtrip() {
        let mut g = EGraph::<SymbolLang>::new();
        let e: RecExpr<SymbolLang> = "(f (g a) b)".parse().unwrap();
        let id = g.add_expr(&e);
        g.rebuild();
        assert_eq!(g.id_to_expr(id).to_string(), "(f (g a) b)");
    }
}
