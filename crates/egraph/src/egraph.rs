//! The e-graph data structure: hash-consed e-nodes, e-classes, and
//! deferred congruence-closure maintenance (`rebuild`), following the
//! algorithm of the egg paper (POPL 2021).

use crate::analysis::Analysis;
use crate::fxhash::FxHashMap;
use crate::language::{Id, Language, OpKey, RecExpr};
use crate::unionfind::UnionFind;
use std::fmt;

/// An equivalence class of e-nodes.
///
/// `nodes` holds the e-nodes belonging to this class. Between
/// [`EGraph::rebuild`] calls the stored children may be stale (point at
/// non-canonical ids); after a rebuild they are canonical, sorted and
/// deduplicated.
#[derive(Clone, Debug)]
pub struct EClass<L, D> {
    /// The canonical id of this class.
    pub id: Id,
    /// E-nodes in this class.
    pub(crate) nodes: Vec<L>,
    /// Analysis data for this class.
    pub data: D,
    /// Parent e-nodes (as originally added) and the class they live in.
    pub(crate) parents: Vec<(L, Id)>,
}

impl<L: Language, D> EClass<L, D> {
    /// The e-nodes in this class.
    pub fn nodes(&self) -> &[L] {
        &self.nodes
    }

    /// Number of e-nodes in this class.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the class holds no e-nodes (never the case for classes
    /// observed through [`EGraph::classes`]).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over the e-nodes in this class.
    pub fn iter(&self) -> std::slice::Iter<'_, L> {
        self.nodes.iter()
    }
}

/// A hash-consed e-graph over language `L` with analysis `N`.
///
/// See the [crate docs](crate) for an overview and example.
pub struct EGraph<L: Language, N: Analysis<L> = ()> {
    /// The analysis instance (rule-accessible state lives here).
    pub analysis: N,
    unionfind: UnionFind,
    memo: FxHashMap<L, Id>,
    classes: Vec<Option<EClass<L, N::Data>>>,
    /// Operator index: for every [`OpKey`], the e-classes containing at
    /// least one e-node with that operator. Kept exact (canonical,
    /// sorted, deduplicated) by [`EGraph::rebuild`]; entries appended by
    /// [`EGraph::add`] between rebuilds may be stale, so readers
    /// canonicalize (see [`EGraph::classes_with_op`]).
    classes_by_op: FxHashMap<OpKey, Vec<Id>>,
    /// Worklist of parent e-nodes whose children were unioned.
    pending: Vec<(L, Id)>,
    /// Worklist of e-nodes whose analysis data must be re-made.
    analysis_pending: Vec<(L, Id)>,
    clean: bool,
}

impl<L: Language, N: Analysis<L> + Default> Default for EGraph<L, N> {
    fn default() -> Self {
        Self::with_analysis(N::default())
    }
}

impl<L: Language, N: Analysis<L> + Default> EGraph<L, N> {
    /// Creates an empty e-graph with a default analysis.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<L: Language, N: Analysis<L>> EGraph<L, N> {
    /// Creates an empty e-graph with the given analysis instance.
    pub fn with_analysis(analysis: N) -> Self {
        EGraph {
            analysis,
            unionfind: UnionFind::new(),
            memo: FxHashMap::default(),
            classes: Vec::new(),
            classes_by_op: FxHashMap::default(),
            pending: Vec::new(),
            analysis_pending: Vec::new(),
            clean: true,
        }
    }

    /// Number of e-classes.
    pub fn num_classes(&self) -> usize {
        self.classes.iter().filter(|c| c.is_some()).count()
    }

    /// Number of distinct (hash-consed) e-nodes. Between rebuilds this may
    /// slightly overcount because stale memo entries linger, matching egg's
    /// behaviour for limit checks.
    pub fn total_nodes(&self) -> usize {
        self.memo.len()
    }

    /// True when no e-nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }

    /// The canonical id of `id`.
    pub fn find(&self, id: Id) -> Id {
        self.unionfind.find(id)
    }

    /// Iterates over all canonical e-classes in ascending id order
    /// (deterministic).
    pub fn classes(&self) -> impl Iterator<Item = &EClass<L, N::Data>> {
        self.classes.iter().filter_map(Option::as_ref)
    }

    /// The e-class of (the canonical form of) `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never issued by this e-graph.
    pub fn class(&self, id: Id) -> &EClass<L, N::Data> {
        let id = self.find(id);
        self.classes[usize::from(id)]
            .as_ref()
            .expect("canonical id must have a class")
    }

    /// Canonicalizes the children of `enode`.
    fn canonicalize(&mut self, enode: &L) -> L {
        enode.map_children(|c| self.unionfind.find_mut(c))
    }

    /// Looks up an e-node (children need not be canonical); returns its
    /// class if present.
    pub fn lookup(&self, enode: &L) -> Option<Id> {
        let canon = enode.map_children(|c| self.unionfind.find(c));
        self.memo.get(&canon).map(|&id| self.find(id))
    }

    /// Adds `enode` (hash-consed); returns the id of its e-class.
    pub fn add(&mut self, enode: L) -> Id {
        let canon = self.canonicalize(&enode);
        if let Some(&existing) = self.memo.get(&canon) {
            return self.unionfind.find_mut(existing);
        }
        let id = self.unionfind.make_set();
        debug_assert_eq!(usize::from(id), self.classes.len());
        let data = N::make(self, &canon);
        for &child in canon.children() {
            let child_class = self.classes[usize::from(child)]
                .as_mut()
                .expect("children must be canonical classes");
            child_class.parents.push((canon.clone(), id));
        }
        self.classes.push(Some(EClass {
            id,
            nodes: vec![canon.clone()],
            data,
            parents: Vec::new(),
        }));
        self.classes_by_op
            .entry(canon.op_key())
            .or_default()
            .push(id);
        self.memo.insert(canon, id);
        N::modify(self, id);
        id
    }

    /// Adds a whole [`RecExpr`], returning the e-class of its root.
    ///
    /// # Panics
    ///
    /// Panics on an empty expression.
    pub fn add_expr(&mut self, expr: &RecExpr<L>) -> Id {
        let nodes = expr.as_ref();
        assert!(!nodes.is_empty(), "cannot add an empty RecExpr");
        let mut ids: Vec<Id> = Vec::with_capacity(nodes.len());
        for node in nodes {
            let remapped = node.map_children(|c| ids[usize::from(c)]);
            ids.push(self.add(remapped));
        }
        *ids.last().unwrap()
    }

    /// Unions the classes of `a` and `b`; returns `(canonical_id, changed)`.
    pub fn union(&mut self, a: Id, b: Id) -> (Id, bool) {
        let a = self.unionfind.find_mut(a);
        let b = self.unionfind.find_mut(b);
        if a == b {
            return (a, false);
        }
        self.clean = false;
        let keep = self.unionfind.union(a, b);
        let merge = if keep == a { b } else { a };

        let merged = self.classes[usize::from(merge)]
            .take()
            .expect("merged class must exist");
        // Parents of the absorbed class must be re-canonicalized.
        self.pending.extend(merged.parents.iter().cloned());

        let kept = self.classes[usize::from(keep)]
            .as_mut()
            .expect("kept class must exist");
        let (a_changed, b_changed) = self.analysis.merge(&mut kept.data, merged.data);
        if a_changed {
            // Data of the kept class changed: its existing parents must
            // re-make their data.
            self.analysis_pending.extend(kept.parents.iter().cloned());
        }
        if b_changed {
            self.analysis_pending.extend(merged.parents.iter().cloned());
        }
        kept.nodes.extend(merged.nodes);
        kept.parents.extend(merged.parents);
        N::modify(self, keep);
        (keep, true)
    }

    /// Restores the congruence invariant and refreshes analysis data.
    ///
    /// Must be called after a batch of [`EGraph::union`]s before searching
    /// patterns again; [`crate::Runner`] does this automatically each
    /// iteration. Returns the number of unions performed during repair.
    pub fn rebuild(&mut self) -> usize {
        let mut repairs = 0;
        while !self.pending.is_empty() || !self.analysis_pending.is_empty() {
            while let Some((node, class)) = self.pending.pop() {
                let canon = self.canonicalize(&node);
                let class = self.unionfind.find_mut(class);
                if let Some(old) = self.memo.insert(canon, class) {
                    let (_, changed) = self.union(old, class);
                    if changed {
                        repairs += 1;
                    }
                }
            }
            while let Some((node, class)) = self.analysis_pending.pop() {
                let canon = self.canonicalize(&node);
                // The node may have been merged away; its class is still
                // valid through find.
                let class_id = self.unionfind.find_mut(class);
                let node_data = N::make(self, &canon);
                let eclass = self.classes[usize::from(class_id)]
                    .as_mut()
                    .expect("class must exist");
                let (changed, _) = self.analysis.merge(&mut eclass.data, node_data);
                if changed {
                    self.analysis_pending.extend(eclass.parents.iter().cloned());
                    N::modify(self, class_id);
                }
            }
        }
        self.rebuild_classes();
        self.clean = true;
        repairs
    }

    fn rebuild_classes(&mut self) {
        // Canonicalize, sort and dedup every class's node list.
        for slot in &mut self.classes {
            let Some(class) = slot else { continue };
            for node in &mut class.nodes {
                for c in node.children_mut() {
                    *c = self.unionfind.find(*c);
                }
            }
            class.nodes.sort();
            class.nodes.dedup();
        }
        // Re-derive the operator index from the canonical classes. The
        // sweep above already touches every e-node, so this keeps the
        // index exact at no extra asymptotic cost; vectors stay allocated
        // across rebuilds. Ascending class order makes every entry list
        // sorted, so the `last()` check is a full dedup.
        for ids in self.classes_by_op.values_mut() {
            ids.clear();
        }
        let classes_by_op = &mut self.classes_by_op;
        for class in self.classes.iter().filter_map(Option::as_ref) {
            for node in &class.nodes {
                let ids = classes_by_op.entry(node.op_key()).or_default();
                if ids.last() != Some(&class.id) {
                    ids.push(class.id);
                }
            }
        }
    }

    /// The e-classes containing at least one e-node whose operator has
    /// key `key` — the candidate set indexed e-matching starts from.
    ///
    /// On a clean e-graph (see [`EGraph::is_clean`]) the returned ids are
    /// canonical, sorted and exact. Between rebuilds the list may contain
    /// stale or duplicate ids (never miss a class): callers must map ids
    /// through [`EGraph::find`] and dedup.
    pub fn classes_with_op(&self, key: OpKey) -> &[Id] {
        self.classes_by_op.get(&key).map_or(&[], Vec::as_slice)
    }

    /// True when the e-graph is congruent (no pending repairs).
    pub fn is_clean(&self) -> bool {
        self.clean
    }

    /// Extracts any concrete expression represented by class `id`
    /// (an arbitrary but deterministic choice; mainly for tests).
    ///
    /// # Panics
    ///
    /// Panics if the e-graph is not clean, or on a malformed e-graph where
    /// some class has no extractable node.
    pub fn id_to_expr(&self, id: Id) -> RecExpr<L> {
        let (_, expr) = crate::extract::Extractor::new(self, crate::extract::AstSize)
            .find_best(id)
            .expect("class must be extractable");
        expr
    }

    /// Checks that two expressions are represented in the same e-class.
    pub fn equivs(&self, a: &RecExpr<L>, b: &RecExpr<L>) -> bool {
        let (Some(ia), Some(ib)) = (self.lookup_expr(a), self.lookup_expr(b)) else {
            return false;
        };
        ia == ib
    }

    /// Looks up a whole expression without adding anything; `None` if any
    /// node along the way is absent.
    pub fn lookup_expr(&self, expr: &RecExpr<L>) -> Option<Id> {
        let nodes = expr.as_ref();
        let mut ids: Vec<Id> = Vec::with_capacity(nodes.len());
        for node in nodes {
            let remapped = node.map_children(|c| ids[usize::from(c)]);
            ids.push(self.lookup(&remapped)?);
        }
        ids.last().copied()
    }
}

impl<L: Language, N: Analysis<L>> fmt::Debug for EGraph<L, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EGraph {{ classes: {}, nodes: {} }}",
            self.num_classes(),
            self.total_nodes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::SymbolLang;

    fn leaf(g: &mut EGraph<SymbolLang>, name: &str) -> Id {
        g.add(SymbolLang::leaf(name))
    }

    #[test]
    fn add_hash_conses() {
        let mut g = EGraph::<SymbolLang>::new();
        let x1 = leaf(&mut g, "x");
        let x2 = leaf(&mut g, "x");
        assert_eq!(x1, x2);
        assert_eq!(g.total_nodes(), 1);
        assert_eq!(g.num_classes(), 1);
    }

    #[test]
    fn union_merges_classes() {
        let mut g = EGraph::<SymbolLang>::new();
        let x = leaf(&mut g, "x");
        let y = leaf(&mut g, "y");
        assert_ne!(g.find(x), g.find(y));
        let (root, changed) = g.union(x, y);
        assert!(changed);
        g.rebuild();
        assert_eq!(g.find(x), g.find(y));
        assert_eq!(g.find(x), root);
        assert_eq!(g.num_classes(), 1);
        assert_eq!(g.class(x).len(), 2);
    }

    #[test]
    fn congruence_closure_via_rebuild() {
        // f(x), f(y): union x=y must make f(x) = f(y) after rebuild.
        let mut g = EGraph::<SymbolLang>::new();
        let x = leaf(&mut g, "x");
        let y = leaf(&mut g, "y");
        let fx = g.add(SymbolLang::new("f", vec![x]));
        let fy = g.add(SymbolLang::new("f", vec![y]));
        assert_ne!(g.find(fx), g.find(fy));
        g.union(x, y);
        g.rebuild();
        assert_eq!(g.find(fx), g.find(fy), "congruence must propagate");
    }

    #[test]
    fn congruence_cascades_upward() {
        // g(f(x)), g(f(y)): one union at the leaves collapses two levels.
        let mut g = EGraph::<SymbolLang>::new();
        let x = leaf(&mut g, "x");
        let y = leaf(&mut g, "y");
        let fx = g.add(SymbolLang::new("f", vec![x]));
        let fy = g.add(SymbolLang::new("f", vec![y]));
        let gfx = g.add(SymbolLang::new("g", vec![fx]));
        let gfy = g.add(SymbolLang::new("g", vec![fy]));
        g.union(x, y);
        g.rebuild();
        assert_eq!(g.find(gfx), g.find(gfy));
        assert!(g.is_clean());
    }

    #[test]
    fn add_expr_and_lookup_expr() {
        let mut g = EGraph::<SymbolLang>::new();
        let e: RecExpr<SymbolLang> = "(+ (* x y) z)".parse().unwrap();
        let id = g.add_expr(&e);
        assert_eq!(g.lookup_expr(&e), Some(id));
        let missing: RecExpr<SymbolLang> = "(- a b)".parse().unwrap();
        assert_eq!(g.lookup_expr(&missing), None);
    }

    #[test]
    fn equivs_after_union() {
        let mut g = EGraph::<SymbolLang>::new();
        let a: RecExpr<SymbolLang> = "(+ x y)".parse().unwrap();
        let b: RecExpr<SymbolLang> = "(+ y x)".parse().unwrap();
        let ia = g.add_expr(&a);
        let ib = g.add_expr(&b);
        assert!(!g.equivs(&a, &b));
        g.union(ia, ib);
        g.rebuild();
        assert!(g.equivs(&a, &b));
    }

    #[test]
    fn self_union_is_noop() {
        let mut g = EGraph::<SymbolLang>::new();
        let x = leaf(&mut g, "x");
        let (_, changed) = g.union(x, x);
        assert!(!changed);
        assert!(g.is_clean());
    }

    #[test]
    fn rebuild_dedups_class_nodes() {
        // f(x) and f(y) become identical nodes after x=y; the merged class
        // must contain one copy.
        let mut g = EGraph::<SymbolLang>::new();
        let x = leaf(&mut g, "x");
        let y = leaf(&mut g, "y");
        let fx = g.add(SymbolLang::new("f", vec![x]));
        let _fy = g.add(SymbolLang::new("f", vec![y]));
        g.union(x, y);
        g.rebuild();
        assert_eq!(g.class(fx).len(), 1);
    }

    #[test]
    fn id_to_expr_roundtrip() {
        let mut g = EGraph::<SymbolLang>::new();
        let e: RecExpr<SymbolLang> = "(f (g a) b)".parse().unwrap();
        let id = g.add_expr(&e);
        g.rebuild();
        assert_eq!(g.id_to_expr(id).to_string(), "(f (g a) b)");
    }
}
