//! Rewrite rules: a searcher pattern and an applier pattern.

use crate::analysis::Analysis;
use crate::egraph::EGraph;
use crate::language::Language;
use crate::pattern::{Pattern, PatternParseError, SearchMatches};

/// A named rewrite `lhs => rhs`.
///
/// Bidirectional rules (the paper's "⇔") are represented as two `Rewrite`
/// values, one per direction, exactly like egg's `rewrite!(...; ..<=>..)`
/// expansion.
#[derive(Clone, Debug)]
pub struct Rewrite<L> {
    /// Rule name, used in scheduler statistics and reports.
    pub name: String,
    searcher: Pattern<L>,
    applier: Pattern<L>,
}

impl<L: Language> Rewrite<L> {
    /// Builds a rewrite from two pattern strings.
    ///
    /// # Errors
    ///
    /// Returns an error when either pattern fails to parse or when the
    /// right-hand side uses a variable the left-hand side does not bind.
    pub fn parse(name: &str, lhs: &str, rhs: &str) -> Result<Self, PatternParseError> {
        let searcher = Pattern::parse(lhs)?;
        let applier = Pattern::parse(rhs)?;
        let bound = searcher.vars();
        for v in applier.vars() {
            if !bound.contains(&v) {
                return Err(PatternParseError(format!(
                    "rewrite {name}: rhs variable {v} is not bound by the lhs"
                )));
            }
        }
        Ok(Rewrite {
            name: name.to_owned(),
            searcher,
            applier,
        })
    }

    /// The left-hand side pattern.
    pub fn lhs(&self) -> &Pattern<L> {
        &self.searcher
    }

    /// The right-hand side pattern.
    pub fn rhs(&self) -> &Pattern<L> {
        &self.applier
    }

    /// Searches the e-graph for all matches of the left-hand side.
    pub fn search<N: Analysis<L>>(&self, egraph: &EGraph<L, N>) -> Vec<SearchMatches> {
        self.searcher.search(egraph)
    }

    /// Applies this rule to previously found matches; returns the number
    /// of unions that changed the e-graph.
    pub fn apply<N: Analysis<L>>(
        &self,
        egraph: &mut EGraph<L, N>,
        matches: &[SearchMatches],
    ) -> usize {
        let mut changed = 0;
        for m in matches {
            for subst in &m.substs {
                let new_id = self.applier.instantiate(egraph, subst);
                let (_, did) = egraph.union(m.class, new_id);
                if did {
                    changed += 1;
                }
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::{RecExpr, SymbolLang};

    #[test]
    fn parse_checks_rhs_vars() {
        assert!(Rewrite::<SymbolLang>::parse("ok", "(+ ?a ?b)", "(+ ?b ?a)").is_ok());
        let err = Rewrite::<SymbolLang>::parse("bad", "(+ ?a ?b)", "(+ ?a ?c)").unwrap_err();
        assert!(err.0.contains("?c"), "{err}");
    }

    #[test]
    fn apply_unions_matched_class() {
        let mut g = EGraph::<SymbolLang>::new();
        let e: RecExpr<SymbolLang> = "(+ x zero)".parse().unwrap();
        let id = g.add_expr(&e);
        g.rebuild();
        let rw = Rewrite::<SymbolLang>::parse("add-zero", "(+ ?a zero)", "?a").unwrap();
        let matches = rw.search(&g);
        assert_eq!(matches.len(), 1);
        let changed = rw.apply(&mut g, &matches);
        assert_eq!(changed, 1);
        g.rebuild();
        let x: RecExpr<SymbolLang> = "x".parse().unwrap();
        assert_eq!(g.lookup_expr(&x), Some(g.find(id)));
    }

    #[test]
    fn apply_is_idempotent_on_same_match() {
        let mut g = EGraph::<SymbolLang>::new();
        let e: RecExpr<SymbolLang> = "(+ x y)".parse().unwrap();
        g.add_expr(&e);
        g.rebuild();
        let rw = Rewrite::<SymbolLang>::parse("comm", "(+ ?a ?b)", "(+ ?b ?a)").unwrap();
        let m1 = rw.search(&g);
        assert_eq!(rw.apply(&mut g, &m1), 1);
        g.rebuild();
        // Re-applying produces no change: (+ y x) already in the class.
        let m2 = rw.search(&g);
        assert_eq!(rw.apply(&mut g, &m2), 0);
    }
}
