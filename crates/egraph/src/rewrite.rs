//! Rewrite rules: a searcher pattern and an applier pattern, plus the
//! batched two-phase apply ([`apply_rules`]) the [`crate::Runner`] uses.

use crate::analysis::Analysis;
use crate::egraph::EGraph;
use crate::language::Language;
use crate::pattern::{Pattern, PatternParseError, SearchMatches};
use esyn_par::{par_map, Parallelism};

/// A named rewrite `lhs => rhs`.
///
/// Bidirectional rules (the paper's "⇔") are represented as two `Rewrite`
/// values, one per direction, exactly like egg's `rewrite!(...; ..<=>..)`
/// expansion.
#[derive(Clone, Debug)]
pub struct Rewrite<L> {
    /// Rule name, used in scheduler statistics and reports.
    pub name: String,
    searcher: Pattern<L>,
    applier: Pattern<L>,
}

impl<L: Language> Rewrite<L> {
    /// Builds a rewrite from two pattern strings.
    ///
    /// # Errors
    ///
    /// Returns an error when either pattern fails to parse or when the
    /// right-hand side uses a variable the left-hand side does not bind.
    pub fn parse(name: &str, lhs: &str, rhs: &str) -> Result<Self, PatternParseError> {
        let searcher = Pattern::parse(lhs)?;
        let applier = Pattern::parse(rhs)?;
        let bound = searcher.vars();
        for v in applier.vars() {
            if !bound.contains(&v) {
                return Err(PatternParseError(format!(
                    "rewrite {name}: rhs variable {v} is not bound by the lhs"
                )));
            }
        }
        Ok(Rewrite {
            name: name.to_owned(),
            searcher,
            applier,
        })
    }

    /// The left-hand side pattern.
    pub fn lhs(&self) -> &Pattern<L> {
        &self.searcher
    }

    /// The right-hand side pattern.
    pub fn rhs(&self) -> &Pattern<L> {
        &self.applier
    }

    /// Searches the e-graph for all matches of the left-hand side.
    pub fn search<N: Analysis<L>>(&self, egraph: &EGraph<L, N>) -> Vec<SearchMatches> {
        self.searcher.search(egraph)
    }

    /// Applies this rule to previously found matches; returns the number
    /// of unions that changed the e-graph.
    ///
    /// This is the naive per-match path: every substitution is
    /// instantiated and unioned, including the (late-iteration majority
    /// of) substitutions whose right-hand side is already represented in
    /// the matched class. [`crate::Runner`] instead applies whole
    /// iterations through [`apply_rules`], which stages substitutions
    /// against the memo first; this method remains the reference
    /// semantics the batched path is property-tested against.
    pub fn apply<N: Analysis<L>>(
        &self,
        egraph: &mut EGraph<L, N>,
        matches: &[SearchMatches],
    ) -> usize {
        let mut changed = 0;
        for m in matches {
            for subst in &m.substs {
                let new_id = self.applier.instantiate(egraph, subst);
                let (_, did) = egraph.union(m.class, new_id);
                if did {
                    changed += 1;
                }
            }
        }
        changed
    }
}

/// Outcome of one batched apply phase ([`apply_rules`]).
#[derive(Clone, Debug, Default)]
pub struct ApplyReport {
    /// Per rule (in the order passed), the number of unions that changed
    /// the e-graph.
    pub changed: Vec<usize>,
    /// Substitutions the stage phase proved to be no-ops and skipped.
    pub skipped: usize,
    /// Substitutions that survived staging and were committed.
    pub committed: usize,
}

impl ApplyReport {
    /// Total e-graph-changing unions across all rules.
    pub fn total_changed(&self) -> usize {
        self.changed.iter().sum()
    }
}

/// Applies one iteration's matches for many rules in two phases.
///
/// **Stage** (read-only, fans out over rules on `parallelism`): every
/// substitution is probed against the e-graph's memo with
/// `Pattern::stage_is_noop`; substitutions whose right-hand side is
/// already represented in the matched class are dropped. The probe is a
/// pure function of `(rule, &egraph)` at phase start, so the fan-out is
/// bit-deterministic at any thread count — exactly the search phase's
/// contract.
///
/// **Commit** (serial, in rule order): survivors are instantiated and
/// unioned exactly as [`Rewrite::apply`] would. Because a no-op verdict
/// is stable under the unions earlier commits perform (unions never
/// split classes; the memo never forgets a node), the committed e-graph
/// *represents* the same terms and classes as the naive path after the
/// next [`EGraph::rebuild`]: class count and the label-free
/// [`EGraph::checksum`] agree (the seeded property suite pins this).
/// Internal id numbering and union tallies may differ from naive —
/// the naive path materializes transient duplicate nodes when
/// canonicalization drifts mid-phase (consuming fresh ids and counting
/// their merge-back as a change), churn the staged path never performs.
/// What staging saves per skipped substitution is the naive path's
/// instantiation cost: a heap allocation, a hash probe per
/// right-hand-side node, and a union call.
///
/// `matches[i]` must be rule `i`'s matches (pass an empty `Vec` for
/// rules that were banned or not searched).
pub fn apply_rules<L, N>(
    egraph: &mut EGraph<L, N>,
    rules: &[Rewrite<L>],
    matches: &[Vec<SearchMatches>],
    parallelism: Parallelism,
) -> ApplyReport
where
    L: Language + Sync,
    N: Analysis<L> + Sync,
    N::Data: Sync,
{
    assert_eq!(
        rules.len(),
        matches.len(),
        "one match list per rule required"
    );
    // Stage: survivors per rule as (match, subst) index pairs.
    let survivors: Vec<Vec<(u32, u32)>> = {
        let egraph = &*egraph;
        par_map(parallelism, rules, |ri, rule| {
            let ms = &matches[ri];
            if ms.is_empty() {
                return Vec::new();
            }
            let mut scratch = rule.applier.make_scratch();
            let mut out = Vec::new();
            for (mi, m) in ms.iter().enumerate() {
                for (si, subst) in m.substs.iter().enumerate() {
                    if !rule
                        .applier
                        .stage_is_noop(egraph, subst, m.class, &mut scratch)
                    {
                        out.push((mi as u32, si as u32));
                    }
                }
            }
            out
        })
    };
    // Commit: serial, in rule order.
    let mut report = ApplyReport::default();
    for (ri, rule) in rules.iter().enumerate() {
        let mut changed = 0;
        for &(mi, si) in &survivors[ri] {
            let m = &matches[ri][mi as usize];
            let new_id = rule.applier.instantiate(egraph, &m.substs[si as usize]);
            let (_, did) = egraph.union(m.class, new_id);
            if did {
                changed += 1;
            }
        }
        let total: usize = matches[ri].iter().map(|m| m.substs.len()).sum();
        report.committed += survivors[ri].len();
        report.skipped += total - survivors[ri].len();
        report.changed.push(changed);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::{RecExpr, SymbolLang};

    #[test]
    fn parse_checks_rhs_vars() {
        assert!(Rewrite::<SymbolLang>::parse("ok", "(+ ?a ?b)", "(+ ?b ?a)").is_ok());
        let err = Rewrite::<SymbolLang>::parse("bad", "(+ ?a ?b)", "(+ ?a ?c)").unwrap_err();
        assert!(err.0.contains("?c"), "{err}");
    }

    #[test]
    fn apply_unions_matched_class() {
        let mut g = EGraph::<SymbolLang>::new();
        let e: RecExpr<SymbolLang> = "(+ x zero)".parse().unwrap();
        let id = g.add_expr(&e);
        g.rebuild();
        let rw = Rewrite::<SymbolLang>::parse("add-zero", "(+ ?a zero)", "?a").unwrap();
        let matches = rw.search(&g);
        assert_eq!(matches.len(), 1);
        let changed = rw.apply(&mut g, &matches);
        assert_eq!(changed, 1);
        g.rebuild();
        let x: RecExpr<SymbolLang> = "x".parse().unwrap();
        assert_eq!(g.lookup_expr(&x), Some(g.find(id)));
    }

    #[test]
    fn apply_rules_matches_naive_semantics() {
        // One iteration of [comm, assoc] on the same start expression:
        // the staged path and the naive per-match path must represent the
        // same e-graph (label-free checksum + class count).
        let rules = vec![
            Rewrite::<SymbolLang>::parse("comm", "(+ ?a ?b)", "(+ ?b ?a)").unwrap(),
            Rewrite::parse("assoc", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))").unwrap(),
        ];
        let e: RecExpr<SymbolLang> = "(+ (+ x y) (+ y z))".parse().unwrap();
        let run = |batched: bool| {
            let mut g = EGraph::<SymbolLang>::new();
            g.add_expr(&e);
            g.rebuild();
            for _ in 0..3 {
                let matches: Vec<_> = rules.iter().map(|r| r.search(&g)).collect();
                if batched {
                    apply_rules(&mut g, &rules, &matches, esyn_par::Parallelism::Serial);
                } else {
                    for (r, m) in rules.iter().zip(&matches) {
                        r.apply(&mut g, m);
                    }
                }
                g.rebuild();
            }
            (g.checksum(), g.num_classes())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn apply_rules_skips_saturated_substs() {
        let mut g = EGraph::<SymbolLang>::new();
        let e: RecExpr<SymbolLang> = "(+ x y)".parse().unwrap();
        g.add_expr(&e);
        g.rebuild();
        let rules = vec![Rewrite::<SymbolLang>::parse("comm", "(+ ?a ?b)", "(+ ?b ?a)").unwrap()];
        let matches = vec![rules[0].search(&g)];
        let first = apply_rules(&mut g, &rules, &matches, esyn_par::Parallelism::Serial);
        assert_eq!(first.changed, vec![1]);
        g.rebuild();
        // Both orders now coexist: every substitution is a staged no-op.
        let matches = vec![rules[0].search(&g)];
        let second = apply_rules(&mut g, &rules, &matches, esyn_par::Parallelism::Serial);
        assert_eq!(second.changed, vec![0]);
        assert_eq!(second.committed, 0);
        assert_eq!(second.skipped, 2);
    }

    #[test]
    fn apply_is_idempotent_on_same_match() {
        let mut g = EGraph::<SymbolLang>::new();
        let e: RecExpr<SymbolLang> = "(+ x y)".parse().unwrap();
        g.add_expr(&e);
        g.rebuild();
        let rw = Rewrite::<SymbolLang>::parse("comm", "(+ ?a ?b)", "(+ ?b ?a)").unwrap();
        let m1 = rw.search(&g);
        assert_eq!(rw.apply(&mut g, &m1), 1);
        g.rebuild();
        // Re-applying produces no change: (+ y x) already in the class.
        let m2 = rw.search(&g);
        assert_eq!(rw.apply(&mut g, &m2), 0);
    }
}
