//! Syntactic patterns and backtracking e-matching.

use crate::analysis::Analysis;
use crate::egraph::EGraph;
use crate::language::{sexpr_tokens, Id, Language};
use std::fmt;

/// A pattern variable, written `?name` in pattern text.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub String);

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// One node of a pattern AST: either a variable or a language e-node whose
/// "children" ids index back into the pattern's own node list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PatternNode<L> {
    /// A pattern variable that matches any e-class.
    Var(Var),
    /// A concrete operator that must match an e-node.
    ENode(L),
}

/// A parsed pattern (child-first node list; the last node is the root).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pattern<L> {
    nodes: Vec<PatternNode<L>>,
}

/// A variable binding produced by matching.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Subst {
    entries: Vec<(Var, Id)>,
}

impl Subst {
    /// The binding for `var`, if present.
    pub fn get(&self, var: &Var) -> Option<Id> {
        self.entries
            .iter()
            .find(|(v, _)| v == var)
            .map(|&(_, id)| id)
    }

    /// Adds a binding (caller must ensure the var is unbound).
    fn insert(&mut self, var: Var, id: Id) {
        debug_assert!(self.get(&var).is_none());
        self.entries.push((var, id));
    }

    /// Iterates over the bindings.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, Id)> {
        self.entries.iter().map(|(v, id)| (v, *id))
    }

    fn normalized(mut self) -> Self {
        self.entries.sort();
        self
    }
}

/// All matches of a pattern inside one e-class.
#[derive(Clone, Debug)]
pub struct SearchMatches {
    /// The e-class in which the pattern root matched.
    pub class: Id,
    /// One substitution per distinct way of matching.
    pub substs: Vec<Subst>,
}

/// Error from [`Pattern::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternParseError(pub String);

impl fmt::Display for PatternParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pattern parse error: {}", self.0)
    }
}

impl std::error::Error for PatternParseError {}

impl<L: Language> Pattern<L> {
    /// Parses pattern text such as `(* ?a (+ ?b 1))`.
    ///
    /// Atoms beginning with `?` become [`Var`]s; everything else must be
    /// accepted by [`Language::from_op`].
    ///
    /// # Errors
    ///
    /// Returns [`PatternParseError`] on malformed S-expressions or unknown
    /// operators.
    pub fn parse(text: &str) -> Result<Self, PatternParseError> {
        let mut toks = sexpr_tokens(text);
        let mut nodes = Vec::new();
        let root = Self::parse_into(&mut toks, &mut nodes)?;
        if let Some(t) = toks.first() {
            return Err(PatternParseError(format!("trailing input `{t}`")));
        }
        debug_assert_eq!(usize::from(root), nodes.len() - 1);
        Ok(Pattern { nodes })
    }

    fn parse_into(
        toks: &mut Vec<String>,
        nodes: &mut Vec<PatternNode<L>>,
    ) -> Result<Id, PatternParseError> {
        if toks.is_empty() {
            return Err(PatternParseError("unexpected end of pattern".into()));
        }
        let t = toks.remove(0);
        match t.as_str() {
            "(" => {
                if toks.is_empty() {
                    return Err(PatternParseError("missing operator after `(`".into()));
                }
                let op = toks.remove(0);
                let mut children = Vec::new();
                loop {
                    match toks.first().map(String::as_str) {
                        Some(")") => {
                            toks.remove(0);
                            break;
                        }
                        Some(_) => children.push(Self::parse_into(toks, nodes)?),
                        None => return Err(PatternParseError("unbalanced `(`".into())),
                    }
                }
                let enode = L::from_op(&op, children).map_err(PatternParseError)?;
                nodes.push(PatternNode::ENode(enode));
                Ok(Id::from(nodes.len() - 1))
            }
            ")" => Err(PatternParseError("unexpected `)`".into())),
            atom => {
                if let Some(name) = atom.strip_prefix('?') {
                    if name.is_empty() {
                        return Err(PatternParseError("`?` needs a variable name".into()));
                    }
                    nodes.push(PatternNode::Var(Var(name.to_owned())));
                } else {
                    let enode = L::from_op(atom, Vec::new()).map_err(PatternParseError)?;
                    nodes.push(PatternNode::ENode(enode));
                }
                Ok(Id::from(nodes.len() - 1))
            }
        }
    }

    /// The variables appearing in this pattern.
    pub fn vars(&self) -> Vec<Var> {
        let mut vars: Vec<Var> = self
            .nodes
            .iter()
            .filter_map(|n| match n {
                PatternNode::Var(v) => Some(v.clone()),
                PatternNode::ENode(_) => None,
            })
            .collect();
        vars.sort();
        vars.dedup();
        vars
    }

    /// Root node index.
    fn root(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Searches every e-class; returns matches for classes with at least
    /// one substitution.
    pub fn search<N: Analysis<L>>(&self, egraph: &EGraph<L, N>) -> Vec<SearchMatches> {
        egraph
            .classes()
            .filter_map(|class| {
                let substs = self.search_class(egraph, class.id);
                if substs.is_empty() {
                    None
                } else {
                    Some(SearchMatches {
                        class: class.id,
                        substs,
                    })
                }
            })
            .collect()
    }

    /// All distinct substitutions under which this pattern matches e-class
    /// `class`.
    pub fn search_class<N: Analysis<L>>(&self, egraph: &EGraph<L, N>, class: Id) -> Vec<Subst> {
        let mut results = self.match_idx(egraph, self.root(), class, Subst::default());
        for s in &mut results {
            *s = std::mem::take(s).normalized();
        }
        results.sort_by(|a, b| a.entries.cmp(&b.entries));
        results.dedup();
        results
    }

    fn match_idx<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        pat: usize,
        class: Id,
        subst: Subst,
    ) -> Vec<Subst> {
        let class = egraph.find(class);
        match &self.nodes[pat] {
            PatternNode::Var(v) => match subst.get(v) {
                Some(bound) => {
                    if egraph.find(bound) == class {
                        vec![subst]
                    } else {
                        Vec::new()
                    }
                }
                None => {
                    let mut s = subst;
                    s.insert(v.clone(), class);
                    vec![s]
                }
            },
            PatternNode::ENode(pnode) => {
                let mut out = Vec::new();
                for enode in egraph.class(class).nodes() {
                    if !enode.matches(pnode) {
                        continue;
                    }
                    let mut partial = vec![subst.clone()];
                    for (&pchild, &echild) in pnode.children().iter().zip(enode.children()) {
                        let mut next = Vec::new();
                        for s in partial {
                            next.extend(self.match_idx(egraph, usize::from(pchild), echild, s));
                        }
                        partial = next;
                        if partial.is_empty() {
                            break;
                        }
                    }
                    out.extend(partial);
                }
                out
            }
        }
    }

    /// Instantiates this pattern under `subst`, adding e-nodes to the
    /// e-graph; returns the e-class of the instantiated root.
    ///
    /// # Panics
    ///
    /// Panics if a pattern variable is unbound in `subst` (rewrite
    /// construction guarantees this cannot happen for right-hand sides).
    pub fn instantiate<N: Analysis<L>>(&self, egraph: &mut EGraph<L, N>, subst: &Subst) -> Id {
        let mut ids: Vec<Id> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let id = match node {
                PatternNode::Var(v) => subst
                    .get(v)
                    .unwrap_or_else(|| panic!("unbound pattern variable {v}")),
                PatternNode::ENode(n) => {
                    let remapped = n.map_children(|c| ids[usize::from(c)]);
                    egraph.add(remapped)
                }
            };
            ids.push(id);
        }
        *ids.last().expect("pattern is non-empty")
    }
}

impl<L: Language> fmt::Display for Pattern<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go<L: Language>(
            nodes: &[PatternNode<L>],
            idx: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            match &nodes[idx] {
                PatternNode::Var(v) => write!(f, "{v}"),
                PatternNode::ENode(n) if n.is_leaf() => write!(f, "{}", n.op_str()),
                PatternNode::ENode(n) => {
                    write!(f, "({}", n.op_str())?;
                    for &c in n.children() {
                        write!(f, " ")?;
                        go(nodes, usize::from(c), f)?;
                    }
                    write!(f, ")")
                }
            }
        }
        go(&self.nodes, self.root(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::{RecExpr, SymbolLang};

    fn graph_of(exprs: &[&str]) -> (EGraph<SymbolLang>, Vec<Id>) {
        let mut g = EGraph::new();
        let ids = exprs
            .iter()
            .map(|s| {
                let e: RecExpr<SymbolLang> = s.parse().unwrap();
                g.add_expr(&e)
            })
            .collect();
        g.rebuild();
        (g, ids)
    }

    #[test]
    fn parse_and_display() {
        let p = Pattern::<SymbolLang>::parse("(* ?a (+ ?b c))").unwrap();
        assert_eq!(p.to_string(), "(* ?a (+ ?b c))");
        assert_eq!(p.vars(), vec![Var("a".to_owned()), Var("b".to_owned())]);
    }

    #[test]
    fn parse_errors() {
        assert!(Pattern::<SymbolLang>::parse("(+ ?a").is_err());
        assert!(Pattern::<SymbolLang>::parse("?").is_err());
        assert!(Pattern::<SymbolLang>::parse("(+ ?a ?b) junk").is_err());
    }

    #[test]
    fn matches_simple() {
        let (g, ids) = graph_of(&["(+ x y)"]);
        let p = Pattern::<SymbolLang>::parse("(+ ?a ?b)").unwrap();
        let substs = p.search_class(&g, ids[0]);
        assert_eq!(substs.len(), 1);
        let s = &substs[0];
        assert_eq!(
            g.find(s.get(&Var("a".into())).unwrap()),
            g.find(g.lookup(&SymbolLang::leaf("x")).unwrap())
        );
    }

    #[test]
    fn nonlinear_pattern_requires_same_class() {
        let (g, ids) = graph_of(&["(+ x x)", "(+ x y)"]);
        let p = Pattern::<SymbolLang>::parse("(+ ?a ?a)").unwrap();
        assert_eq!(p.search_class(&g, ids[0]).len(), 1);
        assert_eq!(p.search_class(&g, ids[1]).len(), 0);
    }

    #[test]
    fn nonlinear_pattern_matches_after_union() {
        let (mut g, ids) = graph_of(&["(+ x y)"]);
        let p = Pattern::<SymbolLang>::parse("(+ ?a ?a)").unwrap();
        assert!(p.search_class(&g, ids[0]).is_empty());
        let x = g.lookup(&SymbolLang::leaf("x")).unwrap();
        let y = g.lookup(&SymbolLang::leaf("y")).unwrap();
        g.union(x, y);
        g.rebuild();
        assert_eq!(p.search_class(&g, ids[0]).len(), 1);
    }

    #[test]
    fn search_finds_all_classes() {
        let (g, _) = graph_of(&["(+ a b)", "(+ c d)", "(* e f)"]);
        let p = Pattern::<SymbolLang>::parse("(+ ?x ?y)").unwrap();
        let matches = p.search(&g);
        assert_eq!(matches.len(), 2);
    }

    #[test]
    fn multiple_substs_in_one_class() {
        // Class contains both (+ a b) and (+ c d) after a union: pattern
        // must return two substitutions.
        let (mut g, ids) = graph_of(&["(+ a b)", "(+ c d)"]);
        g.union(ids[0], ids[1]);
        g.rebuild();
        let p = Pattern::<SymbolLang>::parse("(+ ?x ?y)").unwrap();
        let substs = p.search_class(&g, ids[0]);
        assert_eq!(substs.len(), 2);
    }

    #[test]
    fn instantiate_adds_structure() {
        let (mut g, ids) = graph_of(&["(+ x y)"]);
        let lhs = Pattern::<SymbolLang>::parse("(+ ?a ?b)").unwrap();
        let rhs = Pattern::<SymbolLang>::parse("(+ ?b ?a)").unwrap();
        let substs = lhs.search_class(&g, ids[0]);
        let new_id = rhs.instantiate(&mut g, &substs[0]);
        g.rebuild();
        let commuted: RecExpr<SymbolLang> = "(+ y x)".parse().unwrap();
        assert_eq!(g.lookup_expr(&commuted), Some(g.find(new_id)));
    }

    #[test]
    fn leaf_pattern_matches_leaf_only() {
        let (g, _) = graph_of(&["(+ x y)", "x"]);
        let p = Pattern::<SymbolLang>::parse("x").unwrap();
        let matches = p.search(&g);
        assert_eq!(matches.len(), 1);
    }
}
