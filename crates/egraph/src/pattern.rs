//! Syntactic patterns, compiled to e-matching programs at parse time.
//!
//! A [`Pattern`] keeps its parsed AST (for display, [`Pattern::vars`] and
//! instantiation) *and* a compiled [`machine`](crate::machine) program
//! used for searching. Search is index-driven: only e-classes that
//! contain an e-node with the pattern root's operator (per the e-graph's
//! operator index) are visited at all.

use crate::analysis::Analysis;
use crate::egraph::EGraph;
use crate::language::{Id, Language, SexprCursor};
use crate::machine::Program;
use crate::symbol::Symbol;
use std::fmt;

/// A pattern variable, written `?name` in pattern text. The name is
/// interned: copies are cheap and comparisons are integer ops.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub Symbol);

impl Var {
    /// A variable with the given name (without the leading `?`).
    pub fn new(name: &str) -> Var {
        Var(Symbol::intern(name))
    }

    /// The variable name (without the leading `?`).
    pub fn as_str(&self) -> &'static str {
        self.0.as_str()
    }
}

impl From<&str> for Var {
    fn from(name: &str) -> Var {
        Var::new(name)
    }
}

impl From<String> for Var {
    fn from(name: String) -> Var {
        Var::new(&name)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// One node of a pattern AST: either a variable or a language e-node whose
/// "children" ids index back into the pattern's own node list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PatternNode<L> {
    /// A pattern variable that matches any e-class.
    Var(Var),
    /// A concrete operator that must match an e-node.
    ENode(L),
}

/// A parsed pattern (child-first node list; the last node is the root),
/// carrying its compiled e-matching program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pattern<L> {
    nodes: Vec<PatternNode<L>>,
    program: Program<L>,
}

/// A variable binding produced by matching.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Subst {
    entries: Vec<(Var, Id)>,
}

impl Subst {
    /// The binding for `var`, if present.
    pub fn get(&self, var: &Var) -> Option<Id> {
        self.entries
            .iter()
            .find(|(v, _)| v == var)
            .map(|&(_, id)| id)
    }

    /// Builds a substitution from distinct bindings.
    pub(crate) fn from_bindings(bindings: impl Iterator<Item = (Var, Id)>) -> Subst {
        Subst {
            entries: bindings.collect(),
        }
    }

    /// Iterates over the bindings.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, Id)> {
        self.entries.iter().map(|(v, id)| (v, *id))
    }

    fn normalized(mut self) -> Self {
        self.entries.sort();
        self
    }
}

/// Reusable buffers for [`Pattern::stage_is_noop`]; see
/// [`Pattern::make_scratch`].
pub(crate) struct StageScratch<L> {
    /// One clone per `PatternNode::ENode`, children rewritten in place
    /// per probe.
    nodes: Vec<L>,
    /// `slot[i]` = index into `nodes` for pattern node `i` (unused for
    /// variable nodes).
    slot: Vec<usize>,
    /// Canonical class each pattern node resolved to (valid up to the
    /// point a probe bailed out).
    resolved: Vec<Id>,
}

/// All matches of a pattern inside one e-class.
#[derive(Clone, Debug)]
pub struct SearchMatches {
    /// The e-class in which the pattern root matched.
    pub class: Id,
    /// One substitution per distinct way of matching.
    pub substs: Vec<Subst>,
}

/// Error from [`Pattern::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternParseError(pub String);

impl fmt::Display for PatternParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pattern parse error: {}", self.0)
    }
}

impl std::error::Error for PatternParseError {}

fn err_at(msg: impl fmt::Display, pos: Option<usize>) -> PatternParseError {
    match pos {
        Some(p) => PatternParseError(format!("{msg} (at byte {p})")),
        None => PatternParseError(format!("{msg} (at end of input)")),
    }
}

impl<L: Language> Pattern<L> {
    /// Parses pattern text such as `(* ?a (+ ?b 1))` and compiles it.
    ///
    /// Atoms beginning with `?` become [`Var`]s; everything else must be
    /// accepted by [`Language::from_op`].
    ///
    /// # Errors
    ///
    /// Returns [`PatternParseError`] (with the offending token's byte
    /// position) on malformed S-expressions or unknown operators.
    pub fn parse(text: &str) -> Result<Self, PatternParseError> {
        let mut toks = SexprCursor::new(text);
        let mut nodes = Vec::new();
        let root = Self::parse_into(&mut toks, &mut nodes)?;
        if let Some((pos, t)) = toks.peek() {
            return Err(err_at(format!("trailing input `{t}`"), Some(pos)));
        }
        debug_assert_eq!(usize::from(root), nodes.len() - 1);
        let program = Program::compile(&nodes);
        Ok(Pattern { nodes, program })
    }

    fn parse_into(
        toks: &mut SexprCursor,
        nodes: &mut Vec<PatternNode<L>>,
    ) -> Result<Id, PatternParseError> {
        let Some((pos, t)) = toks.take() else {
            return Err(err_at("unexpected end of pattern", None));
        };
        match t {
            "(" => {
                let Some((op_pos, op)) = toks.take() else {
                    return Err(err_at("missing operator after `(`", None));
                };
                if op == "(" || op == ")" {
                    return Err(err_at(
                        format!("expected operator after `(`, got `{op}`"),
                        Some(op_pos),
                    ));
                }
                let op = Symbol::intern(op);
                let mut children = Vec::new();
                loop {
                    match toks.peek() {
                        Some((_, ")")) => {
                            toks.take();
                            break;
                        }
                        Some(_) => children.push(Self::parse_into(toks, nodes)?),
                        None => return Err(err_at("unbalanced `(`", Some(pos))),
                    }
                }
                let enode = L::from_op(op, children).map_err(|e| err_at(e, Some(op_pos)))?;
                nodes.push(PatternNode::ENode(enode));
                Ok(Id::from(nodes.len() - 1))
            }
            ")" => Err(err_at("unexpected `)`", Some(pos))),
            atom => {
                if let Some(name) = atom.strip_prefix('?') {
                    if name.is_empty() {
                        return Err(err_at("`?` needs a variable name", Some(pos)));
                    }
                    nodes.push(PatternNode::Var(Var::new(name)));
                } else {
                    let enode = L::from_op(Symbol::intern(atom), Vec::new())
                        .map_err(|e| err_at(e, Some(pos)))?;
                    nodes.push(PatternNode::ENode(enode));
                }
                Ok(Id::from(nodes.len() - 1))
            }
        }
    }

    /// The variables appearing in this pattern, sorted by name.
    pub fn vars(&self) -> Vec<Var> {
        let mut vars: Vec<Var> = self
            .nodes
            .iter()
            .filter_map(|n| match n {
                PatternNode::Var(v) => Some(v.clone()),
                PatternNode::ENode(_) => None,
            })
            .collect();
        vars.sort_by_key(|v| v.as_str());
        vars.dedup();
        vars
    }

    /// Root node index.
    fn root(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Searches the e-graph; returns matches for classes with at least
    /// one substitution, in ascending class-id order.
    ///
    /// When the pattern root is a concrete operator, only the candidate
    /// classes from the e-graph's operator index are visited — the
    /// asymptotic win over scanning every class.
    pub fn search<N: Analysis<L>>(&self, egraph: &EGraph<L, N>) -> Vec<SearchMatches> {
        let mut regs = Vec::new();
        let mut matched = Vec::new();
        match &self.nodes[self.root()] {
            PatternNode::ENode(n) => {
                let indexed = egraph.classes_with_op(n.op_key());
                if egraph.is_clean() {
                    // After a rebuild the index is canonical, sorted and
                    // exact: match straight off the slice.
                    for &class in indexed {
                        self.append_matches(egraph, class, &mut regs, &mut matched);
                    }
                } else {
                    // Candidate ids may be stale between rebuilds:
                    // canonicalize and dedup before matching.
                    let mut candidates: Vec<Id> =
                        indexed.iter().map(|&id| egraph.find(id)).collect();
                    candidates.sort_unstable();
                    candidates.dedup();
                    for class in candidates {
                        self.append_matches(egraph, class, &mut regs, &mut matched);
                    }
                }
            }
            // A bare-variable pattern matches every class.
            PatternNode::Var(_) => {
                for class in egraph.classes() {
                    self.append_matches(egraph, class.id, &mut regs, &mut matched);
                }
            }
        }
        matched
    }

    fn append_matches<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        class: Id,
        regs: &mut Vec<Id>,
        matched: &mut Vec<SearchMatches>,
    ) {
        let substs = self.matches_in(egraph, class, regs);
        if !substs.is_empty() {
            matched.push(SearchMatches { class, substs });
        }
    }

    /// All distinct substitutions under which this pattern matches e-class
    /// `class`.
    pub fn search_class<N: Analysis<L>>(&self, egraph: &EGraph<L, N>, class: Id) -> Vec<Subst> {
        self.matches_in(egraph, class, &mut Vec::new())
    }

    fn matches_in<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        class: Id,
        regs: &mut Vec<Id>,
    ) -> Vec<Subst> {
        let mut results = Vec::new();
        self.program.run(egraph, class, regs, &mut results);
        for s in &mut results {
            *s = std::mem::take(s).normalized();
        }
        results.sort_by(|a, b| a.entries.cmp(&b.entries));
        results.dedup();
        results
    }

    /// Builds the reusable scratch for [`Pattern::stage_is_noop`]: one
    /// mutable clone per concrete pattern node (children get rewritten in
    /// place for every probed substitution) plus a resolution buffer.
    /// Allocate once per (rule, iteration); probing is then allocation-free.
    pub(crate) fn make_scratch(&self) -> StageScratch<L> {
        let mut nodes = Vec::new();
        let mut slot = vec![usize::MAX; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if let PatternNode::ENode(n) = n {
                slot[i] = nodes.len();
                nodes.push(n.clone());
            }
        }
        StageScratch {
            nodes,
            slot,
            resolved: vec![Id::from(0usize); self.nodes.len()],
        }
    }

    /// The apply stage's read-only no-op probe: true when instantiating
    /// this pattern under `subst` and unioning the result with `class`
    /// provably cannot change the e-graph — every pattern node already
    /// resolves through the memo table and the root resolves into
    /// (the canonical form of) `class` itself.
    ///
    /// The verdict is *stable under later unions*: unions only merge
    /// classes and the memo never forgets a represented node, so a
    /// substitution staged as a no-op against the phase-start e-graph is
    /// still a no-op when the commit phase would have reached it. (The
    /// converse does not hold — a survivor may become a no-op by commit
    /// time — which only costs a redundant-but-harmless instantiation.)
    pub(crate) fn stage_is_noop<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        subst: &Subst,
        class: Id,
        scratch: &mut StageScratch<L>,
    ) -> bool {
        let StageScratch {
            nodes: scratch_nodes,
            slot,
            resolved,
        } = scratch;
        for (i, pnode) in self.nodes.iter().enumerate() {
            let id = match pnode {
                PatternNode::Var(v) => match subst.get(v) {
                    Some(id) => egraph.find(id),
                    None => return false,
                },
                PatternNode::ENode(n) => {
                    let sn = &mut scratch_nodes[slot[i]];
                    let dst = sn.children_mut();
                    for (k, &pc) in n.children().iter().enumerate() {
                        dst[k] = resolved[usize::from(pc)];
                    }
                    match egraph.lookup_canonical(&*sn) {
                        Some(id) => id,
                        None => return false,
                    }
                }
            };
            resolved[i] = id;
        }
        resolved[self.nodes.len() - 1] == egraph.find(class)
    }

    /// Instantiates this pattern under `subst`, adding e-nodes to the
    /// e-graph; returns the e-class of the instantiated root.
    ///
    /// # Panics
    ///
    /// Panics if a pattern variable is unbound in `subst` (rewrite
    /// construction guarantees this cannot happen for right-hand sides).
    pub fn instantiate<N: Analysis<L>>(&self, egraph: &mut EGraph<L, N>, subst: &Subst) -> Id {
        let mut ids: Vec<Id> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let id = match node {
                PatternNode::Var(v) => subst
                    .get(v)
                    .unwrap_or_else(|| panic!("unbound pattern variable {v}")),
                PatternNode::ENode(n) => {
                    let remapped = n.map_children(|c| ids[usize::from(c)]);
                    egraph.add(remapped)
                }
            };
            ids.push(id);
        }
        *ids.last().expect("pattern is non-empty")
    }
}

impl<L: Language> fmt::Display for Pattern<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go<L: Language>(
            nodes: &[PatternNode<L>],
            idx: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            match &nodes[idx] {
                PatternNode::Var(v) => write!(f, "{v}"),
                PatternNode::ENode(n) if n.is_leaf() => write!(f, "{}", n.op_str()),
                PatternNode::ENode(n) => {
                    write!(f, "({}", n.op_str())?;
                    for &c in n.children() {
                        write!(f, " ")?;
                        go(nodes, usize::from(c), f)?;
                    }
                    write!(f, ")")
                }
            }
        }
        go(&self.nodes, self.root(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::{RecExpr, SymbolLang};

    fn graph_of(exprs: &[&str]) -> (EGraph<SymbolLang>, Vec<Id>) {
        let mut g = EGraph::new();
        let ids = exprs
            .iter()
            .map(|s| {
                let e: RecExpr<SymbolLang> = s.parse().unwrap();
                g.add_expr(&e)
            })
            .collect();
        g.rebuild();
        (g, ids)
    }

    #[test]
    fn parse_and_display() {
        let p = Pattern::<SymbolLang>::parse("(* ?a (+ ?b c))").unwrap();
        assert_eq!(p.to_string(), "(* ?a (+ ?b c))");
        assert_eq!(p.vars(), vec![Var::new("a"), Var::new("b")]);
    }

    #[test]
    fn parse_errors() {
        assert!(Pattern::<SymbolLang>::parse("(+ ?a").is_err());
        assert!(Pattern::<SymbolLang>::parse("?").is_err());
        assert!(Pattern::<SymbolLang>::parse("(+ ?a ?b) junk").is_err());
    }

    #[test]
    fn parse_errors_name_positions() {
        let err = Pattern::<SymbolLang>::parse("(+ ?a ?b) junk").unwrap_err();
        assert!(err.0.contains("at byte 10"), "{err}");
        let err = Pattern::<SymbolLang>::parse("(+ ?a").unwrap_err();
        assert!(err.0.contains("at byte 0"), "{err}");
    }

    #[test]
    fn matches_simple() {
        let (g, ids) = graph_of(&["(+ x y)"]);
        let p = Pattern::<SymbolLang>::parse("(+ ?a ?b)").unwrap();
        let substs = p.search_class(&g, ids[0]);
        assert_eq!(substs.len(), 1);
        let s = &substs[0];
        assert_eq!(
            g.find(s.get(&Var::new("a")).unwrap()),
            g.find(g.lookup(&SymbolLang::leaf("x")).unwrap())
        );
    }

    #[test]
    fn nonlinear_pattern_requires_same_class() {
        let (g, ids) = graph_of(&["(+ x x)", "(+ x y)"]);
        let p = Pattern::<SymbolLang>::parse("(+ ?a ?a)").unwrap();
        assert_eq!(p.search_class(&g, ids[0]).len(), 1);
        assert_eq!(p.search_class(&g, ids[1]).len(), 0);
    }

    #[test]
    fn nonlinear_pattern_matches_after_union() {
        let (mut g, ids) = graph_of(&["(+ x y)"]);
        let p = Pattern::<SymbolLang>::parse("(+ ?a ?a)").unwrap();
        assert!(p.search_class(&g, ids[0]).is_empty());
        let x = g.lookup(&SymbolLang::leaf("x")).unwrap();
        let y = g.lookup(&SymbolLang::leaf("y")).unwrap();
        g.union(x, y);
        g.rebuild();
        assert_eq!(p.search_class(&g, ids[0]).len(), 1);
    }

    #[test]
    fn search_finds_all_classes() {
        let (g, _) = graph_of(&["(+ a b)", "(+ c d)", "(* e f)"]);
        let p = Pattern::<SymbolLang>::parse("(+ ?x ?y)").unwrap();
        let matches = p.search(&g);
        assert_eq!(matches.len(), 2);
    }

    #[test]
    fn search_skips_classes_without_the_operator() {
        // The op index must keep the `*` class out of the `+` search's
        // candidate set entirely (same result, fewer classes visited).
        let (g, _) = graph_of(&["(+ a b)", "(* e f)"]);
        let plus = Pattern::<SymbolLang>::parse("(+ ?x ?y)").unwrap();
        let star = Pattern::<SymbolLang>::parse("(* ?x ?y)").unwrap();
        assert_eq!(plus.search(&g).len(), 1);
        assert_eq!(star.search(&g).len(), 1);
        let minus = Pattern::<SymbolLang>::parse("(- ?x ?y)").unwrap();
        assert!(minus.search(&g).is_empty());
    }

    #[test]
    fn bare_variable_pattern_matches_every_class() {
        let (g, _) = graph_of(&["(+ a b)"]);
        let p = Pattern::<SymbolLang>::parse("?x").unwrap();
        assert_eq!(p.search(&g).len(), g.num_classes());
    }

    #[test]
    fn search_works_between_rebuilds() {
        // After a union but before rebuild, index candidates are stale;
        // search must still canonicalize and find matches exactly once.
        let (mut g, ids) = graph_of(&["(+ a b)", "(+ c d)"]);
        g.union(ids[0], ids[1]);
        let p = Pattern::<SymbolLang>::parse("(+ ?x ?y)").unwrap();
        let matches = p.search(&g);
        assert_eq!(matches.len(), 1, "one merged class");
        assert_eq!(matches[0].substs.len(), 2);
    }

    #[test]
    fn multiple_substs_in_one_class() {
        // Class contains both (+ a b) and (+ c d) after a union: pattern
        // must return two substitutions.
        let (mut g, ids) = graph_of(&["(+ a b)", "(+ c d)"]);
        g.union(ids[0], ids[1]);
        g.rebuild();
        let p = Pattern::<SymbolLang>::parse("(+ ?x ?y)").unwrap();
        let substs = p.search_class(&g, ids[0]);
        assert_eq!(substs.len(), 2);
    }

    #[test]
    fn instantiate_adds_structure() {
        let (mut g, ids) = graph_of(&["(+ x y)"]);
        let lhs = Pattern::<SymbolLang>::parse("(+ ?a ?b)").unwrap();
        let rhs = Pattern::<SymbolLang>::parse("(+ ?b ?a)").unwrap();
        let substs = lhs.search_class(&g, ids[0]);
        let new_id = rhs.instantiate(&mut g, &substs[0]);
        g.rebuild();
        let commuted: RecExpr<SymbolLang> = "(+ y x)".parse().unwrap();
        assert_eq!(g.lookup_expr(&commuted), Some(g.find(new_id)));
    }

    #[test]
    fn leaf_pattern_matches_leaf_only() {
        let (g, _) = graph_of(&["(+ x y)", "x"]);
        let p = Pattern::<SymbolLang>::parse("x").unwrap();
        let matches = p.search(&g);
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn deep_pattern_matches_through_structure() {
        let (g, ids) = graph_of(&["(* (+ a b) (+ a c))"]);
        let p = Pattern::<SymbolLang>::parse("(* (+ ?x ?y) (+ ?x ?z))").unwrap();
        let substs = p.search_class(&g, ids[0]);
        assert_eq!(substs.len(), 1);
        let a = g.lookup(&SymbolLang::leaf("a")).unwrap();
        assert_eq!(substs[0].get(&Var::new("x")), Some(a));
    }
}
