//! Per-e-class analysis data, in the style of egg's `Analysis` trait.
//!
//! An analysis attaches a value from a join-semilattice to every e-class
//! and keeps it consistent across merges. The canonical example in this
//! workspace is constant folding for the Boolean language (in `esyn-core`),
//! which lets saturation collapse e-classes that are provably constant.

use crate::egraph::EGraph;
use crate::language::{Id, Language};
use std::fmt::Debug;

/// Semilattice data attached to each e-class.
///
/// `make` computes the data for a freshly added e-node from its children's
/// data; `merge` joins the data of two e-classes being unioned and reports
/// which side(s) changed; `modify` may mutate the e-graph after data
/// changes (e.g. inject a constant e-node).
pub trait Analysis<L: Language>: Sized {
    /// The per-e-class value.
    type Data: Clone + Debug + PartialEq;

    /// Data for a newly inserted e-node (children already carry data).
    fn make(egraph: &EGraph<L, Self>, enode: &L) -> Self::Data;

    /// Joins `a` (the surviving class's data, updated in place) with `b`.
    /// Returns `(a_changed, b_would_change)` — i.e. whether the merged
    /// value differs from the original `a` and from `b` respectively.
    fn merge(&mut self, a: &mut Self::Data, b: Self::Data) -> (bool, bool);

    /// Hook called after an e-class's data may have changed; may add
    /// e-nodes / unions (used for constant folding).
    fn modify(egraph: &mut EGraph<L, Self>, id: Id) {
        let _ = (egraph, id);
    }
}

/// The trivial analysis: attaches `()` to every class.
impl<L: Language> Analysis<L> for () {
    type Data = ();

    fn make(_egraph: &EGraph<L, Self>, _enode: &L) -> Self::Data {}

    fn merge(&mut self, _a: &mut Self::Data, _b: Self::Data) -> (bool, bool) {
        (false, false)
    }
}
