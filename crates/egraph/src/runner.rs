//! The equality-saturation driver, mirroring egg's `Runner`.

use crate::analysis::Analysis;
use crate::egraph::EGraph;
use crate::extract::{CostFunction, Extractor};
use crate::language::{Id, Language, RecExpr};
use crate::rewrite::Rewrite;
use esyn_par::{par_map, Parallelism};
use std::time::{Duration, Instant};

/// Minimum e-graph size (e-nodes) before the search phase fans out over
/// worker threads; below this the per-iteration search is far cheaper
/// than thread spawn cost and runs inline. A scheduling knob only —
/// results are bit-identical either way (see `esyn-par`).
const PAR_SEARCH_MIN_NODES: usize = 1024;

/// Resource limits for a saturation run.
///
/// Defaults mirror the paper's setup scaled to unit-test size; the E-Syn
/// flows override them (the paper used a 300 s time limit and a 2 500 000
/// e-node limit, §4.1).
#[derive(Clone, Copy, Debug)]
pub struct RunnerLimits {
    /// Maximum number of search/apply/rebuild iterations.
    pub iter_limit: usize,
    /// Stop when the e-graph holds at least this many e-nodes.
    pub node_limit: usize,
    /// Wall-clock budget for the whole run.
    pub time_limit: Duration,
}

impl Default for RunnerLimits {
    fn default() -> Self {
        RunnerLimits {
            iter_limit: 30,
            node_limit: 10_000,
            time_limit: Duration::from_secs(5),
        }
    }
}

/// Why a run stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// No rule application changed the e-graph (a fixpoint).
    Saturated,
    /// The iteration limit was reached.
    IterationLimit,
    /// The node limit was reached.
    NodeLimit,
    /// The time limit was reached.
    TimeLimit,
}

/// Per-iteration statistics, useful for plots and debugging.
#[derive(Clone, Debug)]
pub struct IterationStats {
    /// E-nodes after this iteration.
    pub nodes: usize,
    /// E-classes after this iteration.
    pub classes: usize,
    /// Number of e-graph-changing unions applied by rules.
    pub applied: usize,
    /// Number of repair unions performed during rebuild.
    pub rebuilds: usize,
    /// Substitutions the apply stage skipped as provable no-ops (already
    /// represented in the matched class; see `apply_rules`).
    pub skipped_substs: usize,
    /// Rules still in the search set after this iteration (banned rules
    /// count as active — bans expire, drops do not).
    pub active_rules: usize,
    /// Rules dropped from the search set so far (cumulative; see
    /// [`BackoffScheduler::drop_after`]).
    pub dropped_rules: usize,
    /// Wall-clock time of this iteration.
    pub elapsed: Duration,
}

/// Match-throttling scheduler in the style of egg's `BackoffScheduler`,
/// extended with saturation-aware rule *dropping*.
///
/// A rule producing more than `match_limit << times_banned` substitutions
/// in one iteration is banned for `ban_length << times_banned` iterations.
/// This keeps explosive rules (commutativity/associativity) from drowning
/// out the rest.
///
/// Independently, a rule that keeps matching without ever changing the
/// e-graph has saturated out: once it accumulates [`drop_after`]
/// consecutive fruitless iterations (admitted, at least one substitution,
/// zero changing unions) it is removed from the search set for the rest
/// of the run — unlike a ban, a drop never expires. Iterations where the
/// rule found nothing to match, was banned, or was over budget do not
/// advance the streak (they say nothing about whether the rule's matches
/// are exhausted); a single changing union resets it.
///
/// [`drop_after`]: BackoffScheduler::drop_after
#[derive(Clone, Debug)]
pub struct BackoffScheduler {
    /// Base per-iteration match budget per rule.
    pub match_limit: usize,
    /// Base ban duration, in iterations.
    pub ban_length: usize,
    /// Drop a rule from the search set permanently after this many
    /// consecutive fruitless iterations (`None` disables dropping).
    pub drop_after: Option<usize>,
    stats: Vec<RuleStats>,
}

#[derive(Clone, Debug, Default)]
struct RuleStats {
    times_banned: u32,
    banned_until: usize,
    fruitless_streak: usize,
    dropped: bool,
}

impl Default for BackoffScheduler {
    fn default() -> Self {
        BackoffScheduler {
            match_limit: 1_000,
            ban_length: 5,
            drop_after: Some(DEFAULT_DROP_AFTER),
            stats: Vec::new(),
        }
    }
}

/// Default for [`BackoffScheduler::drop_after`]: long enough that a rule
/// stalled only while a banned partner was away (default ban length 5 is
/// of the same order) usually gets its reset before the axe falls, short
/// enough to matter within paper-sized runs (the E-Syn flows run 8–30
/// iterations).
pub const DEFAULT_DROP_AFTER: usize = 4;

impl BackoffScheduler {
    /// Sets [`BackoffScheduler::drop_after`] (`None` disables dropping).
    pub fn with_drop_after(mut self, drop_after: Option<usize>) -> Self {
        self.drop_after = drop_after;
        self
    }

    fn ensure(&mut self, n: usize) {
        if self.stats.len() < n {
            self.stats.resize(n, RuleStats::default());
        }
    }

    fn is_banned(&self, rule: usize, iteration: usize) -> bool {
        self.stats
            .get(rule)
            .is_some_and(|s| iteration < s.banned_until)
    }

    /// True when any rule still in the search set is banned (dropped
    /// rules never return, so their leftover bans must not keep the
    /// runner alive).
    fn any_banned(&self, iteration: usize) -> bool {
        self.stats
            .iter()
            .any(|s| !s.dropped && iteration < s.banned_until)
    }

    fn is_dropped(&self, rule: usize) -> bool {
        self.stats.get(rule).is_some_and(|s| s.dropped)
    }

    /// Rules dropped so far.
    pub fn dropped_count(&self) -> usize {
        self.stats.iter().filter(|s| s.dropped).count()
    }

    /// Returns true when the matches fit the budget; otherwise bans the
    /// rule and returns false.
    fn admit(&mut self, rule: usize, iteration: usize, total_substs: usize) -> bool {
        let s = &mut self.stats[rule];
        let limit = self.match_limit.saturating_shl_usize(s.times_banned);
        if total_substs > limit {
            let length = self.ban_length.saturating_shl_usize(s.times_banned);
            s.times_banned += 1;
            s.banned_until = iteration + length;
            false
        } else {
            true
        }
    }

    /// Records an admitted rule's apply outcome, advancing (or resetting)
    /// its fruitless streak and dropping it once the streak reaches
    /// [`BackoffScheduler::drop_after`].
    fn record_outcome(&mut self, rule: usize, substs: usize, changed: usize) {
        let Some(drop_after) = self.drop_after else {
            return;
        };
        let s = &mut self.stats[rule];
        if s.dropped || substs == 0 {
            return;
        }
        if changed > 0 {
            s.fruitless_streak = 0;
        } else {
            s.fruitless_streak += 1;
            if s.fruitless_streak >= drop_after {
                s.dropped = true;
            }
        }
    }
}

trait SaturatingShl {
    fn saturating_shl_usize(self, shift: u32) -> usize;
}

impl SaturatingShl for usize {
    fn saturating_shl_usize(self, shift: u32) -> usize {
        self.checked_shl(shift).unwrap_or(usize::MAX)
    }
}

/// Drives equality saturation: iteratively search all rules, apply the
/// matches, rebuild, and stop on saturation or a resource limit.
#[derive(Debug)]
pub struct Runner<L: Language, N: Analysis<L> = ()> {
    /// The e-graph being saturated.
    pub egraph: EGraph<L, N>,
    /// Root e-classes registered through [`Runner::with_expr`].
    pub roots: Vec<Id>,
    /// Statistics for each completed iteration.
    pub iterations: Vec<IterationStats>,
    /// Why the last [`Runner::run`] stopped (`None` before any run).
    pub stop_reason: Option<StopReason>,
    limits: RunnerLimits,
    scheduler: Option<BackoffScheduler>,
    parallelism: Parallelism,
}

impl<L: Language, N: Analysis<L> + Default> Default for Runner<L, N> {
    fn default() -> Self {
        Self::with_analysis(N::default())
    }
}

impl<L: Language> Runner<L, ()> {
    /// Creates a runner with default limits, no analysis and the backoff
    /// scheduler enabled. (Pinned to the `()` analysis so type inference
    /// works at call sites; use [`Runner::with_analysis`] otherwise.)
    pub fn new() -> Self {
        Self::default()
    }
}

impl<L: Language, N: Analysis<L>> Runner<L, N> {
    /// Creates a runner with the given analysis instance.
    pub fn with_analysis(analysis: N) -> Self {
        Runner {
            egraph: EGraph::with_analysis(analysis),
            roots: Vec::new(),
            iterations: Vec::new(),
            stop_reason: None,
            limits: RunnerLimits::default(),
            scheduler: Some(BackoffScheduler::default()),
            parallelism: Parallelism::Auto,
        }
    }

    /// Adds `expr` to the e-graph and registers its class as a root.
    pub fn with_expr(mut self, expr: &RecExpr<L>) -> Self {
        let id = self.egraph.add_expr(expr);
        self.roots.push(id);
        self
    }

    /// Overrides the resource limits.
    pub fn with_limits(mut self, limits: RunnerLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Sets the iteration limit.
    pub fn with_iter_limit(mut self, iters: usize) -> Self {
        self.limits.iter_limit = iters;
        self
    }

    /// Sets the e-node limit.
    pub fn with_node_limit(mut self, nodes: usize) -> Self {
        self.limits.node_limit = nodes;
        self
    }

    /// Sets the wall-clock limit.
    pub fn with_time_limit(mut self, time: Duration) -> Self {
        self.limits.time_limit = time;
        self
    }

    /// Replaces the default backoff scheduler.
    pub fn with_scheduler(mut self, scheduler: BackoffScheduler) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Disables match throttling entirely (every match is applied each
    /// iteration — egg's `SimpleScheduler`).
    pub fn without_scheduler(mut self) -> Self {
        self.scheduler = None;
        self
    }

    /// Sets the worker-thread policy for the search phase and the apply
    /// stage pass of [`Runner::run`]. Both are pure functions of
    /// `(rule, &egraph)`, so fanning the rules out over workers changes
    /// wall-clock time only: iteration statistics, stop reason and the
    /// final e-graph are bit-identical at any setting (the scheduler's
    /// match-budget decisions and the apply commit phase stay serial in
    /// rule order). Defaults to [`Parallelism::Auto`] (`ESYN_THREADS`).
    ///
    /// One caveat: the guarantee requires the iteration or node limit to
    /// bind. A [`StopReason::TimeLimit`] stop is inherently
    /// schedule-dependent — thread count changes wall-clock, hence *when*
    /// the budget runs out — exactly as any wall-clock cutoff already
    /// was. Size time limits as a safety net, not the binding cap, where
    /// reproducibility matters.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Runs equality saturation with `rules` until saturation or a limit.
    ///
    /// Each iteration searches every live rule (not banned, not dropped)
    /// — fanned out over worker threads per [`Runner::with_parallelism`],
    /// since searching never mutates the e-graph — stages the matches
    /// against the memo (also fanned out; see
    /// [`apply_rules`](crate::rewrite::apply_rules)), commits the
    /// survivors serially in rule order, and rebuilds.
    pub fn run(mut self, rules: &[Rewrite<L>]) -> Self
    where
        L: Sync,
        N: Sync,
        N::Data: Sync,
    {
        let start = Instant::now();
        if let Some(s) = &mut self.scheduler {
            s.ensure(rules.len());
        }
        self.egraph.rebuild();

        for iteration in 0..self.limits.iter_limit {
            let iter_start = Instant::now();
            if start.elapsed() > self.limits.time_limit {
                self.stop_reason = Some(StopReason::TimeLimit);
                return self;
            }
            if self.egraph.total_nodes() >= self.limits.node_limit {
                self.stop_reason = Some(StopReason::NodeLimit);
                return self;
            }

            // Search phase (read-only): every live (non-banned,
            // non-dropped) rule is searched independently — a pure
            // function of (rule, &egraph) — so the rules fan out over
            // workers. Banned and dropped rules yield no matches without
            // touching the e-graph, exactly as when serial.
            let par = self
                .parallelism
                .when(rules.len() >= 2 && self.egraph.total_nodes() >= PAR_SEARCH_MIN_NODES);
            let searched = {
                let egraph = &self.egraph;
                let scheduler = self.scheduler.as_ref();
                par_map(par, rules, |ri, rule| {
                    if scheduler.is_some_and(|s| s.is_dropped(ri) || s.is_banned(ri, iteration)) {
                        Vec::new()
                    } else {
                        rule.search(egraph)
                    }
                })
            };
            // Match-budget admission stays serial, in rule order: `admit`
            // mutates the backoff statistics, and its decisions must not
            // depend on how the search was scheduled.
            let mut all_matches = Vec::with_capacity(rules.len());
            let mut admitted_substs: Vec<Option<usize>> = Vec::with_capacity(rules.len());
            for (ri, matches) in searched.into_iter().enumerate() {
                if self
                    .scheduler
                    .as_ref()
                    .is_some_and(|s| s.is_dropped(ri) || s.is_banned(ri, iteration))
                {
                    all_matches.push(Vec::new());
                    admitted_substs.push(None);
                    continue;
                }
                let total: usize = matches.iter().map(|m| m.substs.len()).sum();
                let admitted = match &mut self.scheduler {
                    Some(s) => s.admit(ri, iteration, total),
                    None => true,
                };
                all_matches.push(if admitted { matches } else { Vec::new() });
                admitted_substs.push(admitted.then_some(total));
            }

            // Apply phase: a read-only stage pass filters each rule's
            // substitutions down to the ones that can still change the
            // e-graph (fanned out over workers under the same determinism
            // contract as search), then the survivors commit serially in
            // rule order.
            let report = crate::rewrite::apply_rules(&mut self.egraph, rules, &all_matches, par);
            let applied = report.total_changed();

            // Scheduler bookkeeping: an admitted rule that matched but
            // changed nothing advances its fruitless streak; enough
            // fruitless iterations in a row and the rule is dropped from
            // the search set for good.
            if let Some(s) = &mut self.scheduler {
                for (ri, admitted) in admitted_substs.iter().enumerate() {
                    if let Some(substs) = admitted {
                        s.record_outcome(ri, *substs, report.changed[ri]);
                    }
                }
            }

            let rebuilds = self.egraph.rebuild();

            let dropped_rules = self
                .scheduler
                .as_ref()
                .map_or(0, BackoffScheduler::dropped_count);
            self.iterations.push(IterationStats {
                nodes: self.egraph.total_nodes(),
                classes: self.egraph.num_classes(),
                applied,
                rebuilds,
                skipped_substs: report.skipped,
                active_rules: rules.len() - dropped_rules,
                dropped_rules,
                elapsed: iter_start.elapsed(),
            });

            let banned = self
                .scheduler
                .as_ref()
                .is_some_and(|s| s.any_banned(iteration + 1));
            if applied == 0 && rebuilds == 0 && !banned {
                self.stop_reason = Some(StopReason::Saturated);
                return self;
            }
        }
        self.stop_reason = Some(StopReason::IterationLimit);
        self
    }

    /// Extracts the best expression for the first root under `cost_fn`.
    ///
    /// # Panics
    ///
    /// Panics if no root was registered.
    pub fn extract_best<CF: CostFunction<L>>(&self, cost_fn: CF) -> (CF::Cost, RecExpr<L>) {
        let root = *self.roots.first().expect("runner has no roots");
        Extractor::new(&self.egraph, cost_fn)
            .find_best(root)
            .expect("root class must be extractable")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::AstSize;
    use crate::language::SymbolLang;

    fn rules() -> Vec<Rewrite<SymbolLang>> {
        vec![
            Rewrite::parse("comm-add", "(+ ?a ?b)", "(+ ?b ?a)").unwrap(),
            Rewrite::parse("assoc-add", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))").unwrap(),
            Rewrite::parse("add-zero", "(+ ?a zero)", "?a").unwrap(),
            Rewrite::parse("mul-one", "(* ?a one)", "?a").unwrap(),
            Rewrite::parse("mul-zero", "(* ?a zero)", "zero").unwrap(),
        ]
    }

    #[test]
    fn saturates_small_workload() {
        let expr: RecExpr<SymbolLang> = "(+ x (+ y zero))".parse().unwrap();
        let runner = Runner::new().with_expr(&expr).run(&rules());
        assert_eq!(runner.stop_reason, Some(StopReason::Saturated));
        let (cost, best) = runner.extract_best(AstSize);
        assert_eq!(cost, 3);
        // Both (+ x y) and (+ y x) are size-3; either is acceptable.
        let s = best.to_string();
        assert!(s == "(+ x y)" || s == "(+ y x)", "{s}");
    }

    #[test]
    fn simplifies_through_rule_chain() {
        let expr: RecExpr<SymbolLang> = "(+ zero (* (+ a zero) one))".parse().unwrap();
        let runner = Runner::new().with_expr(&expr).run(&rules());
        let (cost, best) = runner.extract_best(AstSize);
        assert_eq!(cost, 1);
        assert_eq!(best.to_string(), "a");
    }

    #[test]
    fn node_limit_stops_run() {
        let expr: RecExpr<SymbolLang> = "(+ a (+ b (+ c (+ d (+ e f)))))".parse().unwrap();
        let runner = Runner::new()
            .with_expr(&expr)
            .with_node_limit(12)
            .run(&rules());
        assert_eq!(runner.stop_reason, Some(StopReason::NodeLimit));
    }

    #[test]
    fn iter_limit_stops_run() {
        let expr: RecExpr<SymbolLang> = "(+ a (+ b (+ c d)))".parse().unwrap();
        let runner = Runner::new()
            .with_expr(&expr)
            .with_iter_limit(1)
            .run(&rules());
        assert_eq!(runner.stop_reason, Some(StopReason::IterationLimit));
        assert_eq!(runner.iterations.len(), 1);
    }

    #[test]
    fn time_limit_stops_run() {
        let expr: RecExpr<SymbolLang> = "(+ a (+ b (+ c d)))".parse().unwrap();
        let runner = Runner::new()
            .with_expr(&expr)
            .with_time_limit(Duration::ZERO)
            .run(&rules());
        assert_eq!(runner.stop_reason, Some(StopReason::TimeLimit));
    }

    #[test]
    fn equivalent_exprs_end_in_same_class() {
        let a: RecExpr<SymbolLang> = "(+ (+ x y) z)".parse().unwrap();
        let b: RecExpr<SymbolLang> = "(+ z (+ y x))".parse().unwrap();
        let mut runner = Runner::<SymbolLang>::new().with_expr(&a).with_expr(&b);
        runner = runner.run(&rules());
        assert_eq!(
            runner.egraph.find(runner.roots[0]),
            runner.egraph.find(runner.roots[1])
        );
    }

    #[test]
    fn without_scheduler_still_saturates() {
        let expr: RecExpr<SymbolLang> = "(+ x zero)".parse().unwrap();
        let runner = Runner::new()
            .with_expr(&expr)
            .without_scheduler()
            .run(&rules());
        assert_eq!(runner.stop_reason, Some(StopReason::Saturated));
    }

    fn drop_workload() -> (Vec<Rewrite<SymbolLang>>, RecExpr<SymbolLang>) {
        // comm-add/assoc-add keep reshaping the 5-atom sum for many
        // iterations; comm-mul saturates its single (* u v) class in
        // iteration 0 and then matches fruitlessly.
        let rules = vec![
            Rewrite::parse("comm-add", "(+ ?a ?b)", "(+ ?b ?a)").unwrap(),
            Rewrite::parse("assoc-add", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))").unwrap(),
            Rewrite::parse("comm-mul", "(* ?a ?b)", "(* ?b ?a)").unwrap(),
        ];
        let expr = "(+ (+ (+ (+ a (* u v)) c) d) e)".parse().unwrap();
        (rules, expr)
    }

    #[test]
    fn fruitless_rules_get_dropped() {
        let (rules, expr) = drop_workload();
        let runner = Runner::new()
            .with_expr(&expr)
            .with_iter_limit(10)
            .run(&rules);
        let drops: Vec<usize> = runner.iterations.iter().map(|i| i.dropped_rules).collect();
        // comm-mul changes the graph in iteration 0, then goes fruitless
        // in iterations 1..=4; the drop lands in iteration 4's stats.
        assert!(drops.len() > DEFAULT_DROP_AFTER, "{drops:?}");
        assert!(
            drops[..DEFAULT_DROP_AFTER].iter().all(|&d| d == 0),
            "{drops:?}"
        );
        assert!(
            drops[DEFAULT_DROP_AFTER..].iter().all(|&d| d == 1),
            "{drops:?}"
        );
        let last = runner.iterations.last().unwrap();
        assert_eq!(last.active_rules, rules.len() - 1);
    }

    #[test]
    fn drop_after_none_disables_dropping() {
        let (rules, expr) = drop_workload();
        let runner = Runner::new()
            .with_expr(&expr)
            .with_iter_limit(10)
            .with_scheduler(BackoffScheduler::default().with_drop_after(None))
            .run(&rules);
        assert!(runner.iterations.iter().all(|i| i.dropped_rules == 0));
        assert!(runner
            .iterations
            .iter()
            .all(|i| i.active_rules == rules.len()));
    }

    #[test]
    fn stage_skips_saturated_substs() {
        // Once (+ x y) and (+ y x) coexist, comm-add's substitutions are
        // all no-ops: the stage pass must skip them rather than
        // instantiate-and-union each one.
        let rules = vec![Rewrite::parse("comm-add", "(+ ?a ?b)", "(+ ?b ?a)").unwrap()];
        let expr: RecExpr<SymbolLang> = "(+ x y)".parse().unwrap();
        let runner = Runner::new().with_expr(&expr).run(&rules);
        assert_eq!(runner.stop_reason, Some(StopReason::Saturated));
        let last = runner.iterations.last().unwrap();
        assert_eq!(last.applied, 0);
        assert!(last.skipped_substs > 0, "{last:?}");
    }

    #[test]
    fn iteration_stats_recorded() {
        let expr: RecExpr<SymbolLang> = "(+ x (+ y zero))".parse().unwrap();
        let runner = Runner::new().with_expr(&expr).run(&rules());
        assert!(!runner.iterations.is_empty());
        let last = runner.iterations.last().unwrap();
        assert!(last.nodes > 0);
        assert!(last.classes > 0);
    }
}
