//! The equality-saturation driver, mirroring egg's `Runner`.

use crate::analysis::Analysis;
use crate::egraph::EGraph;
use crate::extract::{CostFunction, Extractor};
use crate::language::{Id, Language, RecExpr};
use crate::rewrite::Rewrite;
use esyn_par::{par_map, Parallelism};
use std::time::{Duration, Instant};

/// Minimum e-graph size (e-nodes) before the search phase fans out over
/// worker threads; below this the per-iteration search is far cheaper
/// than thread spawn cost and runs inline. A scheduling knob only —
/// results are bit-identical either way (see `esyn-par`).
const PAR_SEARCH_MIN_NODES: usize = 1024;

/// Resource limits for a saturation run.
///
/// Defaults mirror the paper's setup scaled to unit-test size; the E-Syn
/// flows override them (the paper used a 300 s time limit and a 2 500 000
/// e-node limit, §4.1).
#[derive(Clone, Copy, Debug)]
pub struct RunnerLimits {
    /// Maximum number of search/apply/rebuild iterations.
    pub iter_limit: usize,
    /// Stop when the e-graph holds at least this many e-nodes.
    pub node_limit: usize,
    /// Wall-clock budget for the whole run.
    pub time_limit: Duration,
}

impl Default for RunnerLimits {
    fn default() -> Self {
        RunnerLimits {
            iter_limit: 30,
            node_limit: 10_000,
            time_limit: Duration::from_secs(5),
        }
    }
}

/// Why a run stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// No rule application changed the e-graph (a fixpoint).
    Saturated,
    /// The iteration limit was reached.
    IterationLimit,
    /// The node limit was reached.
    NodeLimit,
    /// The time limit was reached.
    TimeLimit,
}

/// Per-iteration statistics, useful for plots and debugging.
#[derive(Clone, Debug)]
pub struct IterationStats {
    /// E-nodes after this iteration.
    pub nodes: usize,
    /// E-classes after this iteration.
    pub classes: usize,
    /// Number of e-graph-changing unions applied by rules.
    pub applied: usize,
    /// Number of repair unions performed during rebuild.
    pub rebuilds: usize,
    /// Wall-clock time of this iteration.
    pub elapsed: Duration,
}

/// Match-throttling scheduler in the style of egg's `BackoffScheduler`.
///
/// A rule producing more than `match_limit << times_banned` substitutions
/// in one iteration is banned for `ban_length << times_banned` iterations.
/// This keeps explosive rules (commutativity/associativity) from drowning
/// out the rest.
#[derive(Clone, Debug)]
pub struct BackoffScheduler {
    /// Base per-iteration match budget per rule.
    pub match_limit: usize,
    /// Base ban duration, in iterations.
    pub ban_length: usize,
    stats: Vec<RuleStats>,
}

#[derive(Clone, Debug, Default)]
struct RuleStats {
    times_banned: u32,
    banned_until: usize,
}

impl Default for BackoffScheduler {
    fn default() -> Self {
        BackoffScheduler {
            match_limit: 1_000,
            ban_length: 5,
            stats: Vec::new(),
        }
    }
}

impl BackoffScheduler {
    fn ensure(&mut self, n: usize) {
        if self.stats.len() < n {
            self.stats.resize(n, RuleStats::default());
        }
    }

    fn is_banned(&self, rule: usize, iteration: usize) -> bool {
        self.stats
            .get(rule)
            .is_some_and(|s| iteration < s.banned_until)
    }

    fn any_banned(&self, iteration: usize) -> bool {
        self.stats.iter().any(|s| iteration < s.banned_until)
    }

    /// Returns true when the matches fit the budget; otherwise bans the
    /// rule and returns false.
    fn admit(&mut self, rule: usize, iteration: usize, total_substs: usize) -> bool {
        let s = &mut self.stats[rule];
        let limit = self.match_limit.saturating_shl_usize(s.times_banned);
        if total_substs > limit {
            let length = self.ban_length.saturating_shl_usize(s.times_banned);
            s.times_banned += 1;
            s.banned_until = iteration + length;
            false
        } else {
            true
        }
    }
}

trait SaturatingShl {
    fn saturating_shl_usize(self, shift: u32) -> usize;
}

impl SaturatingShl for usize {
    fn saturating_shl_usize(self, shift: u32) -> usize {
        self.checked_shl(shift).unwrap_or(usize::MAX)
    }
}

/// Drives equality saturation: iteratively search all rules, apply the
/// matches, rebuild, and stop on saturation or a resource limit.
#[derive(Debug)]
pub struct Runner<L: Language, N: Analysis<L> = ()> {
    /// The e-graph being saturated.
    pub egraph: EGraph<L, N>,
    /// Root e-classes registered through [`Runner::with_expr`].
    pub roots: Vec<Id>,
    /// Statistics for each completed iteration.
    pub iterations: Vec<IterationStats>,
    /// Why the last [`Runner::run`] stopped (`None` before any run).
    pub stop_reason: Option<StopReason>,
    limits: RunnerLimits,
    scheduler: Option<BackoffScheduler>,
    parallelism: Parallelism,
}

impl<L: Language, N: Analysis<L> + Default> Default for Runner<L, N> {
    fn default() -> Self {
        Self::with_analysis(N::default())
    }
}

impl<L: Language> Runner<L, ()> {
    /// Creates a runner with default limits, no analysis and the backoff
    /// scheduler enabled. (Pinned to the `()` analysis so type inference
    /// works at call sites; use [`Runner::with_analysis`] otherwise.)
    pub fn new() -> Self {
        Self::default()
    }
}

impl<L: Language, N: Analysis<L>> Runner<L, N> {
    /// Creates a runner with the given analysis instance.
    pub fn with_analysis(analysis: N) -> Self {
        Runner {
            egraph: EGraph::with_analysis(analysis),
            roots: Vec::new(),
            iterations: Vec::new(),
            stop_reason: None,
            limits: RunnerLimits::default(),
            scheduler: Some(BackoffScheduler::default()),
            parallelism: Parallelism::Auto,
        }
    }

    /// Adds `expr` to the e-graph and registers its class as a root.
    pub fn with_expr(mut self, expr: &RecExpr<L>) -> Self {
        let id = self.egraph.add_expr(expr);
        self.roots.push(id);
        self
    }

    /// Overrides the resource limits.
    pub fn with_limits(mut self, limits: RunnerLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Sets the iteration limit.
    pub fn with_iter_limit(mut self, iters: usize) -> Self {
        self.limits.iter_limit = iters;
        self
    }

    /// Sets the e-node limit.
    pub fn with_node_limit(mut self, nodes: usize) -> Self {
        self.limits.node_limit = nodes;
        self
    }

    /// Sets the wall-clock limit.
    pub fn with_time_limit(mut self, time: Duration) -> Self {
        self.limits.time_limit = time;
        self
    }

    /// Replaces the default backoff scheduler.
    pub fn with_scheduler(mut self, scheduler: BackoffScheduler) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Disables match throttling entirely (every match is applied each
    /// iteration — egg's `SimpleScheduler`).
    pub fn without_scheduler(mut self) -> Self {
        self.scheduler = None;
        self
    }

    /// Sets the worker-thread policy for the search phase of
    /// [`Runner::run`]. Searching is a pure function of
    /// `(rule, &egraph)`, so fanning the rules out over workers changes
    /// wall-clock time only: iteration statistics, stop reason and the
    /// final e-graph are bit-identical at any setting (the scheduler's
    /// match-budget decisions and the whole apply phase stay serial in
    /// rule order). Defaults to [`Parallelism::Auto`] (`ESYN_THREADS`).
    ///
    /// One caveat: the guarantee requires the iteration or node limit to
    /// bind. A [`StopReason::TimeLimit`] stop is inherently
    /// schedule-dependent — thread count changes wall-clock, hence *when*
    /// the budget runs out — exactly as any wall-clock cutoff already
    /// was. Size time limits as a safety net, not the binding cap, where
    /// reproducibility matters.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Runs equality saturation with `rules` until saturation or a limit.
    ///
    /// Each iteration searches every (non-banned) rule — fanned out over
    /// worker threads per [`Runner::with_parallelism`], since searching
    /// never mutates the e-graph — then applies all matches and rebuilds,
    /// serially in rule order.
    pub fn run(mut self, rules: &[Rewrite<L>]) -> Self
    where
        L: Sync,
        N: Sync,
        N::Data: Sync,
    {
        let start = Instant::now();
        if let Some(s) = &mut self.scheduler {
            s.ensure(rules.len());
        }
        self.egraph.rebuild();

        for iteration in 0..self.limits.iter_limit {
            let iter_start = Instant::now();
            if start.elapsed() > self.limits.time_limit {
                self.stop_reason = Some(StopReason::TimeLimit);
                return self;
            }
            if self.egraph.total_nodes() >= self.limits.node_limit {
                self.stop_reason = Some(StopReason::NodeLimit);
                return self;
            }

            // Search phase (read-only): every non-banned rule is searched
            // independently — a pure function of (rule, &egraph) — so the
            // rules fan out over workers. Banned rules yield no matches
            // without touching the e-graph, exactly as when serial.
            let par = self
                .parallelism
                .when(rules.len() >= 2 && self.egraph.total_nodes() >= PAR_SEARCH_MIN_NODES);
            let searched = {
                let egraph = &self.egraph;
                let scheduler = self.scheduler.as_ref();
                par_map(par, rules, |ri, rule| {
                    if scheduler.is_some_and(|s| s.is_banned(ri, iteration)) {
                        Vec::new()
                    } else {
                        rule.search(egraph)
                    }
                })
            };
            // Match-budget admission stays serial, in rule order: `admit`
            // mutates the backoff statistics, and its decisions must not
            // depend on how the search was scheduled.
            let mut all_matches = Vec::with_capacity(rules.len());
            for (ri, matches) in searched.into_iter().enumerate() {
                if self
                    .scheduler
                    .as_ref()
                    .is_some_and(|s| s.is_banned(ri, iteration))
                {
                    all_matches.push(Vec::new());
                    continue;
                }
                let total: usize = matches.iter().map(|m| m.substs.len()).sum();
                let admitted = match &mut self.scheduler {
                    Some(s) => s.admit(ri, iteration, total),
                    None => true,
                };
                all_matches.push(if admitted { matches } else { Vec::new() });
            }

            // Apply phase.
            let mut applied = 0;
            for (rule, matches) in rules.iter().zip(&all_matches) {
                applied += rule.apply(&mut self.egraph, matches);
            }

            let rebuilds = self.egraph.rebuild();

            self.iterations.push(IterationStats {
                nodes: self.egraph.total_nodes(),
                classes: self.egraph.num_classes(),
                applied,
                rebuilds,
                elapsed: iter_start.elapsed(),
            });

            let banned = self
                .scheduler
                .as_ref()
                .is_some_and(|s| s.any_banned(iteration + 1));
            if applied == 0 && rebuilds == 0 && !banned {
                self.stop_reason = Some(StopReason::Saturated);
                return self;
            }
        }
        self.stop_reason = Some(StopReason::IterationLimit);
        self
    }

    /// Extracts the best expression for the first root under `cost_fn`.
    ///
    /// # Panics
    ///
    /// Panics if no root was registered.
    pub fn extract_best<CF: CostFunction<L>>(&self, cost_fn: CF) -> (CF::Cost, RecExpr<L>) {
        let root = *self.roots.first().expect("runner has no roots");
        Extractor::new(&self.egraph, cost_fn)
            .find_best(root)
            .expect("root class must be extractable")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::AstSize;
    use crate::language::SymbolLang;

    fn rules() -> Vec<Rewrite<SymbolLang>> {
        vec![
            Rewrite::parse("comm-add", "(+ ?a ?b)", "(+ ?b ?a)").unwrap(),
            Rewrite::parse("assoc-add", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))").unwrap(),
            Rewrite::parse("add-zero", "(+ ?a zero)", "?a").unwrap(),
            Rewrite::parse("mul-one", "(* ?a one)", "?a").unwrap(),
            Rewrite::parse("mul-zero", "(* ?a zero)", "zero").unwrap(),
        ]
    }

    #[test]
    fn saturates_small_workload() {
        let expr: RecExpr<SymbolLang> = "(+ x (+ y zero))".parse().unwrap();
        let runner = Runner::new().with_expr(&expr).run(&rules());
        assert_eq!(runner.stop_reason, Some(StopReason::Saturated));
        let (cost, best) = runner.extract_best(AstSize);
        assert_eq!(cost, 3);
        // Both (+ x y) and (+ y x) are size-3; either is acceptable.
        let s = best.to_string();
        assert!(s == "(+ x y)" || s == "(+ y x)", "{s}");
    }

    #[test]
    fn simplifies_through_rule_chain() {
        let expr: RecExpr<SymbolLang> = "(+ zero (* (+ a zero) one))".parse().unwrap();
        let runner = Runner::new().with_expr(&expr).run(&rules());
        let (cost, best) = runner.extract_best(AstSize);
        assert_eq!(cost, 1);
        assert_eq!(best.to_string(), "a");
    }

    #[test]
    fn node_limit_stops_run() {
        let expr: RecExpr<SymbolLang> = "(+ a (+ b (+ c (+ d (+ e f)))))".parse().unwrap();
        let runner = Runner::new()
            .with_expr(&expr)
            .with_node_limit(12)
            .run(&rules());
        assert_eq!(runner.stop_reason, Some(StopReason::NodeLimit));
    }

    #[test]
    fn iter_limit_stops_run() {
        let expr: RecExpr<SymbolLang> = "(+ a (+ b (+ c d)))".parse().unwrap();
        let runner = Runner::new()
            .with_expr(&expr)
            .with_iter_limit(1)
            .run(&rules());
        assert_eq!(runner.stop_reason, Some(StopReason::IterationLimit));
        assert_eq!(runner.iterations.len(), 1);
    }

    #[test]
    fn time_limit_stops_run() {
        let expr: RecExpr<SymbolLang> = "(+ a (+ b (+ c d)))".parse().unwrap();
        let runner = Runner::new()
            .with_expr(&expr)
            .with_time_limit(Duration::ZERO)
            .run(&rules());
        assert_eq!(runner.stop_reason, Some(StopReason::TimeLimit));
    }

    #[test]
    fn equivalent_exprs_end_in_same_class() {
        let a: RecExpr<SymbolLang> = "(+ (+ x y) z)".parse().unwrap();
        let b: RecExpr<SymbolLang> = "(+ z (+ y x))".parse().unwrap();
        let mut runner = Runner::<SymbolLang>::new().with_expr(&a).with_expr(&b);
        runner = runner.run(&rules());
        assert_eq!(
            runner.egraph.find(runner.roots[0]),
            runner.egraph.find(runner.roots[1])
        );
    }

    #[test]
    fn without_scheduler_still_saturates() {
        let expr: RecExpr<SymbolLang> = "(+ x zero)".parse().unwrap();
        let runner = Runner::new()
            .with_expr(&expr)
            .without_scheduler()
            .run(&rules());
        assert_eq!(runner.stop_reason, Some(StopReason::Saturated));
    }

    #[test]
    fn iteration_stats_recorded() {
        let expr: RecExpr<SymbolLang> = "(+ x (+ y zero))".parse().unwrap();
        let runner = Runner::new().with_expr(&expr).run(&rules());
        assert!(!runner.iterations.is_empty());
        let last = runner.iterations.last().unwrap();
        assert!(last.nodes > 0);
        assert!(last.classes > 0);
    }
}
