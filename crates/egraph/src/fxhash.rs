//! A deterministic, in-repo FxHash-style hasher for the saturation hot
//! paths.
//!
//! `std`'s default `HashMap` hasher is SipHash-1-3 with a per-process
//! random seed — robust against hash-flooding, but an order of magnitude
//! slower than needed for the small integer-heavy keys the e-graph
//! hashes millions of times per run (e-nodes are an interned operator
//! plus a couple of `u32` ids). [`FxHasher`] reimplements the well-known
//! Firefox/rustc "Fx" scheme: fold each 8-byte word into the state with
//! a rotate, xor and multiply by a single odd constant. It is **not**
//! DoS-resistant; every key hashed here comes from the program itself,
//! never from untrusted input (see DESIGN.md, substitution notes).
//!
//! The state is fixed-width `u64` with no random seeding, so hashes —
//! and therefore map iteration orders — are identical across runs and
//! platforms. Nothing in the workspace may *rely* on iteration order,
//! but determinism here means an accidental dependence cannot fluctuate
//! run-to-run.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier of the Fx scheme (`0x51_7cc1_b7_2722_0a95`), chosen by
/// the Firefox authors as an odd constant with good bit dispersion.
const K: u64 = 0x51_7cc1_b727_220a_95;

/// A fast, deterministic, non-cryptographic hasher (FxHash scheme).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add_word(v as u64);
        self.add_word((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, no seed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_ne!(hash_of(&42u32), hash_of(&43u32));
        assert_ne!(hash_of(&"and"), hash_of(&"or"));
        // Byte-stream and word writes agree with themselves across calls.
        assert_eq!(hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 9]), {
            hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 9])
        });
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<&str, usize> = FxHashMap::default();
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn iteration_order_is_reproducible() {
        // No random seed: two identically-built maps iterate identically.
        let build = || {
            let mut m: FxHashMap<u32, u32> = FxHashMap::default();
            for i in 0u32..1000 {
                m.insert(i.wrapping_mul(2654435761), i);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
