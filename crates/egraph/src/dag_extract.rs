//! DAG-cost extraction: greedy shared-cost and exact branch-and-bound.
//!
//! The tree-cost [`Extractor`](crate::Extractor) charges a shared sub-term
//! once *per reference*; on circuits with reconvergent fanout that
//! over-counts and can pick forms that destroy sharing. The extractors in
//! this module charge every chosen e-class exactly **once**, which is the
//! cost model of the integer-linear-programming extraction the E-Syn paper
//! cites as prior work ("extractor (2)"): each e-class selects one e-node,
//! the total cost is the sum of the selected e-nodes' costs over the
//! *set* of classes reachable from the root, and the selection must be
//! acyclic.
//!
//! Two engines are provided:
//!
//! * [`DagExtractor`] — a greedy fixpoint in the style of the
//!   extraction-gym `faster-greedy-dag` heuristic. Fast, not optimal.
//! * [`extract_exact`] — exact branch-and-bound over per-class choices
//!   with an admissible lower bound, equivalent to solving the ILP.
//!   Exponential in the worst case (the problem is NP-hard), intended for
//!   small graphs and for calibrating the heuristics.
//!
//! Both require a *linear* cost model ([`DagCostFunction`]: one
//! non-negative `f64` per e-node). This is exactly the restriction the
//! paper's pool extraction lifts; these engines exist as the baseline to
//! compare against (see the `ablation_extractors` bench in `esyn-bench`).

use crate::analysis::Analysis;
use crate::egraph::EGraph;
use crate::fxhash::FxHashMap;
use crate::language::{Id, Language, RecExpr};
use std::fmt;

/// Comparison slack for `f64` cost improvement tests.
const EPS: f64 = 1e-9;

/// A linear, per-e-node cost model for DAG extraction.
///
/// The total cost of an extraction is the sum of `node_cost` over the
/// chosen e-node of every e-class in the extracted DAG — each class
/// counted once, no matter how many parents reference it.
///
/// Any `FnMut(&L) -> f64` closure is a `DagCostFunction`, so ad-hoc
/// weightings (e.g. the paper's "weighted sum of operators" local cost)
/// can be passed inline.
pub trait DagCostFunction<L: Language> {
    /// Cost of choosing `enode` for its e-class.
    ///
    /// Must return a finite, non-negative value; the extractors panic on
    /// NaN, infinities or negative costs because branch-and-bound pruning
    /// would silently misbehave otherwise.
    fn node_cost(&mut self, enode: &L) -> f64;
}

impl<L: Language, F: FnMut(&L) -> f64> DagCostFunction<L> for F {
    fn node_cost(&mut self, enode: &L) -> f64 {
        self(enode)
    }
}

/// Counts one unit per e-class in the extracted DAG (shared node count —
/// the DAG analogue of [`AstSize`](crate::AstSize)).
#[derive(Clone, Copy, Debug, Default)]
pub struct DagSize;

impl<L: Language> DagCostFunction<L> for DagSize {
    fn node_cost(&mut self, _enode: &L) -> f64 {
        1.0
    }
}

/// Error from [`extract_exact`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExactExtractError {
    /// The step budget ran out before the search space was exhausted.
    /// Carries the configured budget.
    Budget(u64),
    /// The root e-class has no extractable (acyclic, grounded) term.
    /// Only possible on a malformed or mid-rebuild e-graph.
    NoTerm,
}

impl fmt::Display for ExactExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExactExtractError::Budget(b) => {
                write!(f, "exact extraction exceeded its budget of {b} steps")
            }
            ExactExtractError::NoTerm => {
                write!(f, "root e-class has no extractable term")
            }
        }
    }
}

impl std::error::Error for ExactExtractError {}

/// Dense bitset over e-class indices.
#[derive(Clone, PartialEq, Eq)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    fn union_with(&mut self, other: &BitSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Dense view of an e-graph shared by both extraction engines: canonical
/// class ids, per-class candidate e-nodes with children mapped to dense
/// indices, and validated per-node costs.
struct DenseView<L> {
    ids: Vec<Id>,
    index: FxHashMap<Id, usize>,
    /// `nodes[c][k]` = (e-node, dense child indices, cost).
    nodes: Vec<Vec<(L, Vec<usize>, f64)>>,
}

impl<L: Language> DenseView<L> {
    fn new<N, CF>(egraph: &EGraph<L, N>, cost_fn: &mut CF) -> Self
    where
        N: Analysis<L>,
        CF: DagCostFunction<L>,
    {
        let mut ids = Vec::with_capacity(egraph.num_classes());
        let mut index =
            FxHashMap::with_capacity_and_hasher(egraph.num_classes(), Default::default());
        for class in egraph.classes() {
            let canon = egraph.find(class.id);
            index.insert(canon, ids.len());
            ids.push(canon);
        }
        let mut nodes = Vec::with_capacity(ids.len());
        for &id in &ids {
            let class = egraph.class(id);
            let mut cands = Vec::with_capacity(class.len());
            for node in class.nodes() {
                let cost = cost_fn.node_cost(node);
                assert!(
                    cost.is_finite() && cost >= 0.0,
                    "DagCostFunction returned invalid cost {cost:?} for {node:?}"
                );
                let children: Vec<usize> = node
                    .children()
                    .iter()
                    .map(|&c| index[&egraph.find(c)])
                    .collect();
                cands.push((node.clone(), children, cost));
            }
            nodes.push(cands);
        }
        DenseView { ids, index, nodes }
    }

    fn len(&self) -> usize {
        self.ids.len()
    }
}

/// Greedy DAG-cost extraction.
///
/// Runs a fixpoint where every e-class tracks its cheapest known
/// *sub-DAG* (a set of classes plus one chosen e-node per class in it).
/// A candidate e-node's cost is the cost of the union of its children's
/// sub-DAGs plus itself, with every class counted once. The fixpoint is a
/// heuristic: it can be off optimum when distinct classes would profit
/// from coordinating on a shared child (see [`extract_exact`] for the
/// exact answer), but it never over-counts sharing the way the tree-cost
/// extractor does.
pub struct DagExtractor<'a, L: Language, N: Analysis<L>> {
    egraph: &'a EGraph<L, N>,
    view: DenseView<L>,
    /// Per dense class index: chosen candidate index, its sub-DAG, its cost.
    best: Vec<Option<(usize, BitSet, f64)>>,
}

impl<'a, L: Language, N: Analysis<L>> DagExtractor<'a, L, N> {
    /// Builds the extractor and runs the greedy fixpoint.
    ///
    /// # Panics
    ///
    /// Panics if `cost_fn` returns a NaN, infinite or negative cost.
    pub fn new<CF: DagCostFunction<L>>(egraph: &'a EGraph<L, N>, mut cost_fn: CF) -> Self {
        let view = DenseView::new(egraph, &mut cost_fn);
        let n = view.len();
        let mut ext = DagExtractor {
            egraph,
            view,
            best: vec![None; n],
        };
        ext.run_fixpoint();
        ext
    }

    fn run_fixpoint(&mut self) {
        let n = self.view.len();
        // Cost of the currently chosen node per class, used when summing a
        // candidate set's cost. Members of a stale set are charged their
        // *current* chosen cost; the fixpoint stays a heuristic either way
        // and `find_best` recomputes the exact cost of what it builds.
        let mut chosen_cost = vec![0.0f64; n];
        let mut changed = true;
        while changed {
            changed = false;
            for ci in 0..n {
                for k in 0..self.view.nodes[ci].len() {
                    let children = &self.view.nodes[ci][k].1;
                    // All children must be solved and none may already
                    // contain this class (that would be a cyclic term).
                    let ok = children.iter().all(|&d| {
                        self.best[d]
                            .as_ref()
                            .is_some_and(|(_, set, _)| !set.contains(ci))
                    });
                    if !ok {
                        continue;
                    }
                    let mut set = BitSet::new(n);
                    for &d in children {
                        set.union_with(&self.best[d].as_ref().unwrap().1);
                    }
                    set.insert(ci);
                    let mut cost = self.view.nodes[ci][k].2;
                    for d in set.iter() {
                        if d != ci {
                            cost += chosen_cost[d];
                        }
                    }
                    let better = match &self.best[ci] {
                        Some((_, _, old)) => cost + EPS < *old,
                        None => true,
                    };
                    if better {
                        chosen_cost[ci] = self.view.nodes[ci][k].2;
                        self.best[ci] = Some((k, set, cost));
                        changed = true;
                    }
                }
            }
        }
    }

    /// The greedy sub-DAG cost found for e-class `id`, if any.
    ///
    /// This is the fixpoint's estimate; [`find_best`](Self::find_best)
    /// reports the exact cost of the term it materializes (the two agree
    /// unless the cycle-repair path had to deviate, which is rare).
    pub fn dag_cost_of(&self, id: Id) -> Option<f64> {
        let ci = *self.view.index.get(&self.egraph.find(id))?;
        self.best[ci].as_ref().map(|(_, _, c)| *c)
    }

    /// Extracts the chosen term for `root` and returns `(dag_cost, term)`.
    ///
    /// The returned cost is recomputed from the materialized term (one
    /// charge per distinct class), so it is exact for that term even when
    /// fixpoint bookkeeping was stale. Returns `None` when the root class
    /// has no extractable term.
    pub fn find_best(&self, root: Id) -> Option<(f64, RecExpr<L>)> {
        let ri = *self.view.index.get(&self.egraph.find(root))?;
        self.best[ri].as_ref()?;

        // Final choice per class, computed bottom-up so the result is
        // guaranteed acyclic: a class is "done" once some candidate has
        // all children done; the greedy fixpoint's choice is preferred,
        // with a fallback to the cheapest grounded candidate when the
        // preferred node is stuck in a (stale) cycle.
        let n = self.view.len();
        let mut done: Vec<Option<usize>> = vec![None; n];
        while done[ri].is_none() {
            let mut progress = false;
            for ci in 0..n {
                if done[ci].is_some() {
                    continue;
                }
                let Some((pref, _, _)) = &self.best[ci] else {
                    continue;
                };
                if self.view.nodes[ci][*pref]
                    .1
                    .iter()
                    .all(|&d| done[d].is_some())
                {
                    done[ci] = Some(*pref);
                    progress = true;
                }
            }
            if progress {
                continue;
            }
            let mut repair: Option<(usize, usize, f64)> = None;
            for ci in 0..n {
                if done[ci].is_some() || self.best[ci].is_none() {
                    continue;
                }
                for (k, (_, children, cost)) in self.view.nodes[ci].iter().enumerate() {
                    if children.iter().all(|&d| done[d].is_some())
                        && repair.is_none_or(|(_, _, c)| *cost < c)
                    {
                        repair = Some((ci, k, *cost));
                    }
                }
            }
            let (ci, k, _) = repair?;
            done[ci] = Some(k);
        }

        let expr = build_expr(&self.view, ri, |ci| done[ci].unwrap());
        let cost = selection_cost(&self.view, ri, |ci| done[ci].unwrap());
        Some((cost, expr))
    }
}

/// Exact DAG-cost extraction by branch-and-bound — the ILP baseline.
///
/// Finds the provably cheapest acyclic selection (one e-node per reachable
/// e-class, every class charged once) under the linear cost model. The
/// search seeds its incumbent with the greedy [`DagExtractor`] answer and
/// prunes with an admissible bound (selected cost plus the cheapest-node
/// cost of every still-unassigned required class), so small and medium
/// graphs finish quickly; worst-case behaviour is exponential. `max_steps`
/// bounds the number of search-node expansions.
///
/// # Errors
///
/// * [`ExactExtractError::Budget`] — the budget ran out before the search
///   space was exhausted, so no optimality claim can be made; callers can
///   retry with a larger `max_steps` or fall back to [`DagExtractor`].
/// * [`ExactExtractError::NoTerm`] — the root class has no grounded term.
///
/// # Panics
///
/// Panics if `cost_fn` returns a NaN, infinite or negative cost.
pub fn extract_exact<L, N, CF>(
    egraph: &EGraph<L, N>,
    root: Id,
    mut cost_fn: CF,
    max_steps: u64,
) -> Result<(f64, RecExpr<L>), ExactExtractError>
where
    L: Language,
    N: Analysis<L>,
    CF: DagCostFunction<L>,
{
    let view = DenseView::new(egraph, &mut cost_fn);
    let ri = *view
        .index
        .get(&egraph.find(root))
        .ok_or(ExactExtractError::NoTerm)?;

    // Greedy incumbent: upper bound plus the fallback answer when the
    // search completes without improving on it.
    let greedy = DagExtractor::new(egraph, |n: &L| cost_fn.node_cost(n));
    let (mut incumbent_cost, _) = greedy.find_best(root).ok_or(ExactExtractError::NoTerm)?;
    let mut incumbent: Option<Vec<Option<usize>>> = None;

    let n = view.len();
    let min_cost: Vec<f64> = view
        .nodes
        .iter()
        .map(|cands| {
            cands
                .iter()
                .map(|(_, _, c)| *c)
                .fold(f64::INFINITY, f64::min)
        })
        .collect();

    let mut search = Search {
        view: &view,
        min_cost: &min_cost,
        assigned: vec![None; n],
        required: vec![false; n],
        pending: vec![ri],
        selected_cost: 0.0,
        lower_bound: min_cost[ri],
        steps: 0,
        max_steps,
        incumbent_cost: &mut incumbent_cost,
        incumbent: &mut incumbent,
    };
    search.required[ri] = true;
    let exhausted = search.run();

    if exhausted {
        return Err(ExactExtractError::Budget(max_steps));
    }
    match incumbent {
        Some(assign) => {
            let expr = build_expr(&view, ri, |ci| assign[ci].unwrap());
            let cost = selection_cost(&view, ri, |ci| assign[ci].unwrap());
            Ok((cost, expr))
        }
        // The greedy answer was already optimal.
        None => greedy.find_best(root).ok_or(ExactExtractError::NoTerm),
    }
}

struct Search<'a, L> {
    view: &'a DenseView<L>,
    min_cost: &'a [f64],
    assigned: Vec<Option<usize>>,
    required: Vec<bool>,
    /// Required-but-possibly-unassigned classes (DFS order; may contain
    /// already-assigned duplicates, skipped on pop).
    pending: Vec<usize>,
    selected_cost: f64,
    /// Admissible bound: `selected_cost` + cheapest node of every
    /// required-but-unassigned class.
    lower_bound: f64,
    steps: u64,
    max_steps: u64,
    incumbent_cost: &'a mut f64,
    incumbent: &'a mut Option<Vec<Option<usize>>>,
}

impl<L: Language> Search<'_, L> {
    /// Returns `true` when the budget ran out (search incomplete).
    fn run(&mut self) -> bool {
        if self.steps >= self.max_steps {
            return true;
        }
        self.steps += 1;

        // Next required, unassigned class.
        let ci = loop {
            match self.pending.pop() {
                Some(c) if self.assigned[c].is_none() => break c,
                Some(_) => continue,
                None => {
                    // Complete selection; acyclicity was enforced at every
                    // assignment below.
                    if self.selected_cost + EPS < *self.incumbent_cost {
                        *self.incumbent_cost = self.selected_cost;
                        *self.incumbent = Some(self.assigned.clone());
                    }
                    return false;
                }
            }
        };

        let mut exhausted = false;
        // Cheapest candidates first so good incumbents arrive early.
        let mut order: Vec<usize> = (0..self.view.nodes[ci].len()).collect();
        order.sort_by(|&a, &b| {
            self.view.nodes[ci][a]
                .2
                .total_cmp(&self.view.nodes[ci][b].2)
        });

        for k in order {
            let (_, children, cost) = &self.view.nodes[ci][k];
            // Cycle check: following already-assigned choices from the
            // children must not lead back to `ci`. The assignment that
            // would close any cycle always sees the rest of that cycle
            // assigned, so checking here catches every cycle.
            if self.reaches(children, ci) {
                continue;
            }

            let new_required: Vec<usize> = children
                .iter()
                .copied()
                .filter(|&d| !self.required[d])
                .collect();
            let saved_pending = self.pending.len();

            self.assigned[ci] = Some(k);
            self.selected_cost += cost;
            self.lower_bound += cost - self.min_cost[ci];
            for &d in &new_required {
                self.required[d] = true;
                self.lower_bound += self.min_cost[d];
                self.pending.push(d);
            }

            if self.lower_bound + EPS < *self.incumbent_cost {
                exhausted |= self.run();
            }

            // Undo.
            self.pending.truncate(saved_pending);
            for &d in &new_required {
                self.required[d] = false;
                self.lower_bound -= self.min_cost[d];
            }
            self.lower_bound -= cost - self.min_cost[ci];
            self.selected_cost -= cost;
            self.assigned[ci] = None;

            if exhausted {
                break;
            }
        }

        self.pending.push(ci);
        exhausted
    }

    /// Does following assigned choices from `from` reach `target`?
    fn reaches(&self, from: &[usize], target: usize) -> bool {
        let mut stack: Vec<usize> = from.to_vec();
        let mut seen = BitSet::new(self.view.len());
        while let Some(c) = stack.pop() {
            if c == target {
                return true;
            }
            if seen.contains(c) {
                continue;
            }
            seen.insert(c);
            if let Some(k) = self.assigned[c] {
                stack.extend_from_slice(&self.view.nodes[c][k].1);
            }
        }
        false
    }
}

/// Materializes the term selected by `choice` from `root`, sharing
/// sub-terms per class.
fn build_expr<L: Language>(
    view: &DenseView<L>,
    root: usize,
    choice: impl Fn(usize) -> usize,
) -> RecExpr<L> {
    let mut expr = RecExpr::new();
    let mut built: FxHashMap<usize, Id> = FxHashMap::default();
    enum Frame {
        Visit(usize),
        Emit(usize),
    }
    let mut stack = vec![Frame::Visit(root)];
    while let Some(frame) = stack.pop() {
        match frame {
            Frame::Visit(ci) => {
                if built.contains_key(&ci) {
                    continue;
                }
                stack.push(Frame::Emit(ci));
                for &d in &view.nodes[ci][choice(ci)].1 {
                    stack.push(Frame::Visit(d));
                }
            }
            Frame::Emit(ci) => {
                if built.contains_key(&ci) {
                    continue;
                }
                let (node, children, _) = &view.nodes[ci][choice(ci)];
                let mut it = children.iter();
                let remapped = node.map_children(|_| built[it.next().unwrap()]);
                let id = expr.add(remapped);
                built.insert(ci, id);
            }
        }
    }
    expr
}

/// Cost of a selection: every class reachable from `root` under `choice`
/// charged its chosen node's cost exactly once.
fn selection_cost<L: Language>(
    view: &DenseView<L>,
    root: usize,
    choice: impl Fn(usize) -> usize,
) -> f64 {
    let mut seen = BitSet::new(view.len());
    let mut stack = vec![root];
    let mut total = 0.0;
    while let Some(ci) = stack.pop() {
        if seen.contains(ci) {
            continue;
        }
        seen.insert(ci);
        let (_, children, cost) = &view.nodes[ci][choice(ci)];
        total += cost;
        stack.extend_from_slice(children);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{AstSize, Extractor};
    use crate::language::SymbolLang;

    fn dag_cost_of_expr(expr: &RecExpr<SymbolLang>) -> f64 {
        expr.as_ref().len() as f64
    }

    #[test]
    fn agrees_with_tree_extractor_on_trees() {
        let mut g = EGraph::<SymbolLang>::new();
        let e: RecExpr<SymbolLang> = "(+ (* a b) c)".parse().unwrap();
        let id = g.add_expr(&e);
        g.rebuild();
        let dag = DagExtractor::new(&g, DagSize);
        let (dcost, dbest) = dag.find_best(id).unwrap();
        let tree = Extractor::new(&g, AstSize);
        let (tcost, tbest) = tree.find_best(id).unwrap();
        assert_eq!(dcost, tcost as f64);
        assert_eq!(dbest.to_string(), tbest.to_string());
    }

    #[test]
    fn charges_shared_subterm_once() {
        let mut g = EGraph::<SymbolLang>::new();
        let e: RecExpr<SymbolLang> = "(* (+ x y) (+ x y))".parse().unwrap();
        let id = g.add_expr(&e);
        g.rebuild();
        let dag = DagExtractor::new(&g, DagSize);
        let (cost, best) = dag.find_best(id).unwrap();
        // x, y, +, * — the shared (+ x y) counts once.
        assert_eq!(cost, 4.0);
        assert_eq!(best.len(), 4);
        // The tree extractor reports 7 for the same term.
        let tree = Extractor::new(&g, AstSize);
        assert_eq!(tree.cost_of(id), Some(7));
    }

    #[test]
    fn dag_extractor_prefers_sharing_over_tree_choice() {
        // Root can be (f s s) with an expensive shared child, or
        // (g a b c d e) with five cheap distinct children. Tree cost
        // double-counts s and prefers g; DAG cost charges s once and
        // prefers f.
        let mut g = EGraph::<SymbolLang>::new();
        let shared: RecExpr<SymbolLang> = "(f (pack p q r) (pack p q r))".parse().unwrap();
        let wide: RecExpr<SymbolLang> = "(g a b c d e)".parse().unwrap();
        let x = g.add_expr(&shared);
        let y = g.add_expr(&wide);
        g.union(x, y);
        g.rebuild();

        let tree = Extractor::new(&g, AstSize);
        let (_, tbest) = tree.find_best(x).unwrap();
        assert_eq!(tbest.node(tbest.root()).op_str(), "g"); // 6 < 9 tree-wise

        let dag = DagExtractor::new(&g, DagSize);
        let (dcost, dbest) = dag.find_best(x).unwrap();
        assert_eq!(dbest.node(dbest.root()).op_str(), "f"); // 5 < 6 dag-wise
        assert_eq!(dcost, 5.0); // f, pack, p, q, r
    }

    /// Builds the classic instance where per-class greedy misses the
    /// globally shared choice: A and B can each use the shared class C
    /// (cost 5) or private leaves (cost 3 each). Locally the private leaf
    /// wins; globally sharing C wins.
    fn coordination_trap() -> (EGraph<SymbolLang>, Id) {
        let mut g = EGraph::<SymbolLang>::new();
        let a1: RecExpr<SymbolLang> = "(f c5)".parse().unwrap();
        let a2: RecExpr<SymbolLang> = "(g d3)".parse().unwrap();
        let b1: RecExpr<SymbolLang> = "(p c5)".parse().unwrap();
        let b2: RecExpr<SymbolLang> = "(q e3)".parse().unwrap();
        let ia1 = g.add_expr(&a1);
        let ia2 = g.add_expr(&a2);
        let ib1 = g.add_expr(&b1);
        let ib2 = g.add_expr(&b2);
        g.union(ia1, ia2);
        g.union(ib1, ib2);
        let root = g.add(SymbolLang::new("r", vec![ia1, ib1]));
        g.rebuild();
        (g, root)
    }

    fn trap_cost(node: &SymbolLang) -> f64 {
        match node.op_str() {
            "c5" => 5.0,
            "d3" | "e3" => 3.0,
            _ => 1.0,
        }
    }

    #[test]
    fn exact_beats_greedy_on_coordination_trap() {
        let (g, root) = coordination_trap();
        let dag = DagExtractor::new(&g, trap_cost);
        let (greedy_cost, _) = dag.find_best(root).unwrap();
        // Greedy: A picks (g d3)=4, B picks (q e3)=4, root r=1 → 9.
        assert_eq!(greedy_cost, 9.0);

        let (exact_cost, best) = extract_exact(&g, root, trap_cost, 1 << 20).unwrap();
        // Exact: share c5: r + f + p + c5 = 1+1+1+5 = 8.
        assert_eq!(exact_cost, 8.0);
        assert!(exact_cost < greedy_cost);
        let ops: Vec<&str> = best.as_ref().iter().map(|n| n.op_str()).collect();
        assert!(ops.contains(&"c5"));
        assert!(!ops.contains(&"d3"));
    }

    #[test]
    fn exact_matches_greedy_on_trees() {
        let mut g = EGraph::<SymbolLang>::new();
        let e: RecExpr<SymbolLang> = "(+ (* a b) (* a b))".parse().unwrap();
        let id = g.add_expr(&e);
        g.rebuild();
        let dag = DagExtractor::new(&g, DagSize);
        let (gc, _) = dag.find_best(id).unwrap();
        let (ec, _) = extract_exact(&g, id, DagSize, 1 << 20).unwrap();
        assert_eq!(gc, ec);
        assert_eq!(ec, 4.0);
    }

    #[test]
    fn cyclic_class_extracts_leaf() {
        let mut g = EGraph::<SymbolLang>::new();
        let x = g.add(SymbolLang::leaf("x"));
        let fx = g.add(SymbolLang::new("f", vec![x]));
        g.union(x, fx);
        g.rebuild();
        let dag = DagExtractor::new(&g, DagSize);
        let (cost, best) = dag.find_best(fx).unwrap();
        assert_eq!(cost, 1.0);
        assert_eq!(best.to_string(), "x");
        let (ecost, ebest) = extract_exact(&g, fx, DagSize, 1 << 20).unwrap();
        assert_eq!(ecost, 1.0);
        assert_eq!(ebest.to_string(), "x");
    }

    #[test]
    fn budget_exhaustion_reports_error() {
        let (g, root) = coordination_trap();
        let res = extract_exact(&g, root, trap_cost, 0);
        assert_eq!(res, Err(ExactExtractError::Budget(0)));
        assert!(res.unwrap_err().to_string().contains("budget"));
    }

    #[test]
    fn reported_cost_matches_materialized_expr() {
        let (g, root) = coordination_trap();
        let dag = DagExtractor::new(&g, DagSize);
        let (cost, best) = dag.find_best(root).unwrap();
        assert_eq!(cost, dag_cost_of_expr(&best));
        let (ecost, ebest) = extract_exact(&g, root, DagSize, 1 << 20).unwrap();
        assert_eq!(ecost, dag_cost_of_expr(&ebest));
    }

    mod properties {
        use super::*;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        /// Appends a small random expression over a fixed op alphabet to
        /// `e`, returning its root; depth-bounded like the seed's
        /// `prop_recursive(3, …)` strategy.
        fn random_subexpr(rng: &mut StdRng, e: &mut RecExpr<SymbolLang>, depth: usize) -> Id {
            if depth == 0 || rng.gen_bool(0.3) {
                let name = ["a", "b", "c"][rng.gen_range(0usize..3)];
                e.add(SymbolLang::leaf(name))
            } else {
                let l = random_subexpr(rng, e, depth - 1);
                let r = random_subexpr(rng, e, depth - 1);
                let op = if rng.gen_bool(0.5) { "+" } else { "*" };
                e.add(SymbolLang::new(op, vec![l, r]))
            }
        }

        fn random_expr(rng: &mut StdRng) -> RecExpr<SymbolLang> {
            let mut e = RecExpr::new();
            random_subexpr(rng, &mut e, 3);
            e
        }

        /// Exact is a lower bound on both heuristics' realized DAG
        /// costs, and every reported cost matches its materialized
        /// term. (Greedy-DAG vs the tree extractor carries no
        /// guarantee in either direction: independently minimal child
        /// sub-DAGs may overlap less than the tree choice's.)
        #[test]
        fn exact_lower_bounds_both_heuristics() {
            for case in 0..48u64 {
                let mut rng = StdRng::seed_from_u64(0xDA6_0000 ^ case);
                let e1 = random_expr(&mut rng);
                let e2 = random_expr(&mut rng);

                let mut g = EGraph::<SymbolLang>::new();
                let r1 = g.add_expr(&e1);
                let r2 = g.add_expr(&e2);
                g.union(r1, r2);
                // Extra random unions create multi-node classes; semantics
                // are irrelevant for cost-ordering checks.
                let ids: Vec<Id> = g.classes().map(|c| c.id).collect();
                for _ in 0..rng.gen_range(0usize..4) {
                    let a = ids[rng.gen_range(0usize..ids.len())];
                    let b = ids[rng.gen_range(0usize..ids.len())];
                    g.union(a, b);
                }
                g.rebuild();

                let tree = Extractor::new(&g, AstSize);
                let (_, tbest) = tree.find_best(r1).unwrap();
                let tree_dag_cost = tbest.len() as f64;

                let dag = DagExtractor::new(&g, DagSize);
                let (gcost, gbest) = dag.find_best(r1).unwrap();
                assert_eq!(gcost, gbest.len() as f64, "case {case}");

                // The exact search may hit its budget on adversarial
                // instances; optimality is only asserted when it finishes.
                if let Ok((ecost, ebest)) = extract_exact(&g, r1, DagSize, 1 << 18) {
                    assert_eq!(ecost, ebest.len() as f64, "case {case}");
                    assert!(
                        ecost <= gcost + 1e-6,
                        "case {case}: exact {ecost} worse than greedy {gcost}"
                    );
                    assert!(
                        ecost <= tree_dag_cost + 1e-6,
                        "case {case}: exact {ecost} worse than tree-extracted dag {tree_dag_cost}"
                    );
                }
            }
        }
    }
}
