//! Compiled e-matching: a pattern becomes a small bind/compare
//! instruction program executed against one e-class (the abstract-machine
//! approach of egg's `machine.rs`, after de Moura & Bjørner's e-matching
//! code trees).
//!
//! Compilation happens once at [`crate::Pattern`] parse time; matching
//! then never walks the pattern AST again. Registers hold candidate
//! e-class ids: `Bind` scans the e-nodes of the class in register `i` for
//! operator matches and writes their (canonicalized) children into fresh
//! registers, backtracking over alternatives; `Compare` enforces
//! non-linear patterns (the same variable twice) by requiring two
//! registers to name the same class. A full instruction sequence having
//! executed means a match: the substitution is read straight out of the
//! registers recorded per variable at compile time.

use crate::analysis::Analysis;
use crate::egraph::EGraph;
use crate::language::{Id, Language};
use crate::pattern::{PatternNode, Subst, Var};

/// A register index (slot in the machine's e-class id array).
type Reg = usize;

#[derive(Clone, Debug, PartialEq, Eq)]
enum Instruction<L> {
    /// Find e-nodes in the class held in register `i` whose operator
    /// matches `node`; for each, write its children into registers
    /// `out..out + arity` and continue (backtracking point).
    Bind { node: L, i: Reg, out: Reg },
    /// Require registers `i` and `j` to hold the same e-class.
    Compare { i: Reg, j: Reg },
}

/// A compiled pattern: instruction sequence plus the variable→register
/// map used to materialize substitutions on success.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Program<L> {
    instructions: Vec<Instruction<L>>,
    /// For each pattern variable, the register holding its binding after
    /// a complete match (in order of first occurrence during compilation).
    subst_regs: Vec<(Var, Reg)>,
    n_regs: usize,
}

impl<L: Language> Program<L> {
    /// Compiles a pattern's node list (child-first, root last).
    pub(crate) fn compile(nodes: &[PatternNode<L>]) -> Program<L> {
        let root = nodes.len() - 1;
        let mut instructions = Vec::new();
        let mut subst_regs: Vec<(Var, Reg)> = Vec::new();
        let mut next_reg: Reg = 1; // register 0 is the root class
        let mut todo: Vec<(Reg, usize)> = vec![(0, root)];
        while let Some((reg, idx)) = todo.pop() {
            match &nodes[idx] {
                PatternNode::Var(v) => {
                    match subst_regs.iter().find(|(bound, _)| bound == v) {
                        // Later occurrence of a variable: constrain, don't bind.
                        Some(&(_, j)) => instructions.push(Instruction::Compare { i: reg, j }),
                        None => subst_regs.push((v.clone(), reg)),
                    }
                }
                PatternNode::ENode(n) => {
                    let out = next_reg;
                    next_reg += n.children().len();
                    instructions.push(Instruction::Bind {
                        node: n.clone(),
                        i: reg,
                        out,
                    });
                    for (k, &c) in n.children().iter().enumerate() {
                        todo.push((out + k, usize::from(c)));
                    }
                }
            }
        }
        Program {
            instructions,
            subst_regs,
            n_regs: next_reg,
        }
    }

    /// Runs the program against e-class `class`, appending one [`Subst`]
    /// per match to `out` (not deduplicated; the caller normalizes).
    /// `regs` is caller-provided scratch so a search over many candidate
    /// classes reuses one allocation.
    pub(crate) fn run<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        class: Id,
        regs: &mut Vec<Id>,
        out: &mut Vec<Subst>,
    ) {
        regs.clear();
        regs.resize(self.n_regs, Id::from(0usize));
        regs[0] = egraph.find(class);
        // On a clean e-graph every stored e-node's children are already
        // canonical (rebuild_classes canonicalizes them, and adds on a
        // clean graph canonicalize at insertion), so the per-child and
        // per-compare `find` chains are pure overhead — the hottest loop
        // of the search phase. Registers then only ever hold canonical
        // ids and the finds compile away.
        if egraph.is_clean() {
            self.step::<N, true>(egraph, 0, regs, out);
        } else {
            self.step::<N, false>(egraph, 0, regs, out);
        }
    }

    fn step<N: Analysis<L>, const CLEAN: bool>(
        &self,
        egraph: &EGraph<L, N>,
        pc: usize,
        regs: &mut Vec<Id>,
        out: &mut Vec<Subst>,
    ) {
        let canon = |id: Id| if CLEAN { id } else { egraph.find(id) };
        let Some(instr) = self.instructions.get(pc) else {
            // Every constraint satisfied: read the substitution out of the
            // registers.
            out.push(Subst::from_bindings(
                self.subst_regs
                    .iter()
                    .map(|&(ref v, r)| (v.clone(), canon(regs[r]))),
            ));
            return;
        };
        match instr {
            Instruction::Compare { i, j } => {
                if canon(regs[*i]) == canon(regs[*j]) {
                    self.step::<N, CLEAN>(egraph, pc + 1, regs, out);
                }
            }
            Instruction::Bind { node, i, out: o } => {
                let class = egraph.class(regs[*i]);
                for enode in class.nodes() {
                    if !enode.matches(node) {
                        continue;
                    }
                    for (k, &c) in enode.children().iter().enumerate() {
                        regs[o + k] = canon(c);
                    }
                    self.step::<N, CLEAN>(egraph, pc + 1, regs, out);
                }
            }
        }
    }
}
