//! An e-graph (equality-graph) engine with equality saturation.
//!
//! This crate is the workspace's substitute for the `egg` library [Willsey
//! et al., POPL 2021] that the E-Syn paper builds on. It provides the same
//! conceptual pieces with a compatible design:
//!
//! * [`Language`] — a trait for e-node operator types, plus the flat
//!   AST representation [`RecExpr`];
//! * [`EGraph`] — hash-consed e-nodes grouped into e-classes by a
//!   union-find, with deferred congruence-closure maintenance
//!   ([`EGraph::rebuild`]) as in the egg paper;
//! * [`Analysis`] — optional per-e-class semilattice data (e.g. constant
//!   folding);
//! * [`Symbol`] — a global deterministic string interner; operators and
//!   pattern variables are `u32` handles, so e-node hashing/equality and
//!   substitution lookups are integer ops (hashed with the in-repo
//!   [`FxHasher`] rather than `std`'s SipHash);
//! * [`Pattern`] / [`Rewrite`] — syntactic rewrite rules, compiled at
//!   parse time into bind/compare e-matching programs and searched
//!   through the e-graph's operator index ([`EGraph::classes_with_op`])
//!   so only candidate classes are visited;
//! * [`Runner`] — an equality-saturation driver with node/iteration/time
//!   limits, a match-throttling [`BackoffScheduler`], and a rule-parallel
//!   search phase (deterministic; see `esyn-par`);
//! * [`Extractor`] — bottom-up optimal extraction for monotone
//!   [`CostFunction`]s (the "vanilla extractor" the paper compares
//!   against). The paper's *pool extraction* lives in `esyn-core` and uses
//!   the e-class internals exposed here ([`EGraph::classes`],
//!   [`EClass::nodes`]). DAG-cost extraction (shared e-classes charged
//!   once, greedy and exact) lives in the `esyn-extract` gym, which
//!   snapshots e-graphs through the same internals.
//!
//! # Example
//!
//! ```
//! use esyn_egraph::{EGraph, Pattern, RecExpr, Rewrite, Runner, SymbolLang};
//!
//! let rules = vec![
//!     Rewrite::<SymbolLang>::parse("comm-add", "(+ ?a ?b)", "(+ ?b ?a)").unwrap(),
//!     Rewrite::parse("add-zero", "(+ ?a zero)", "?a").unwrap(),
//! ];
//! let expr: RecExpr<SymbolLang> = "(+ (+ x zero) y)".parse().unwrap();
//! let runner = Runner::new().with_expr(&expr).run(&rules);
//! let (best_cost, best) = runner.extract_best(esyn_egraph::AstSize);
//! assert_eq!(best.to_string(), "(+ x y)");
//! assert_eq!(best_cost, 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod analysis;
mod egraph;
mod extract;
mod fxhash;
mod language;
mod machine;
mod pattern;
mod rewrite;
mod runner;
mod symbol;
mod unionfind;

pub use analysis::Analysis;
pub use egraph::{EClass, EGraph};
pub use extract::{AstDepth, AstSize, CostFunction, Extractor};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use language::{Id, Language, OpKey, RecExpr, RecExprParseError, SymbolLang};
pub use pattern::{Pattern, PatternNode, PatternParseError, SearchMatches, Subst, Var};
pub use rewrite::{apply_rules, ApplyReport, Rewrite};
pub use runner::{
    BackoffScheduler, IterationStats, Runner, RunnerLimits, StopReason, DEFAULT_DROP_AFTER,
};
pub use symbol::Symbol;
pub use unionfind::UnionFind;
