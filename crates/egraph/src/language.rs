//! The [`Language`] trait, e-class ids and the flat AST type [`RecExpr`].

use crate::symbol::Symbol;
use std::fmt;
use std::hash::Hash;
use std::str::FromStr;

/// An e-class id. Dense, issued by the e-graph's union-find.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Id(u32);

impl From<usize> for Id {
    fn from(v: usize) -> Self {
        Id(u32::try_from(v).expect("id exceeds u32::MAX"))
    }
}

impl From<Id> for usize {
    fn from(id: Id) -> usize {
        id.0 as usize
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The operator identity of an e-node: its interned operator symbol plus
/// its arity. The e-graph's operator index ([`crate::EGraph`]) and the
/// e-matching machine key on this, so implementations must uphold
/// `a.matches(b) ⟺ a.op_key() == b.op_key()` (the default `op_key`
/// derives both parts from [`Language::op_sym`] and the child count,
/// which satisfies that whenever `op_sym` discriminates exactly like
/// `matches` does).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OpKey {
    /// The interned operator.
    pub op: Symbol,
    /// Number of children.
    pub arity: u32,
}

/// An e-node operator type.
///
/// Implementors are small enum-like values whose children are [`Id`]s.
/// Equality and hashing must cover the operator *and* the children —
/// hash-consing relies on it. [`Language::matches`] compares operators
/// while *ignoring* children (used by e-matching).
pub trait Language: fmt::Debug + Clone + Eq + Ord + Hash {
    /// True when `self` and `other` have the same operator and arity,
    /// regardless of child ids. Must agree with [`Language::op_key`]:
    /// `a.matches(b)` exactly when `a.op_key() == b.op_key()`.
    fn matches(&self, other: &Self) -> bool;

    /// The children of this e-node.
    fn children(&self) -> &[Id];

    /// Mutable access to the children of this e-node.
    fn children_mut(&mut self) -> &mut [Id];

    /// The interned operator symbol (payload-discriminating: two leaf
    /// variants with different payloads — say the constants `0` and `1`,
    /// or two differently-named variables — must report different
    /// symbols).
    fn op_sym(&self) -> Symbol;

    /// The operator name used for printing and pattern parsing.
    fn op_str(&self) -> &str {
        self.op_sym().as_str()
    }

    /// The key the e-graph's operator→classes index files this node
    /// under. Do not override; see [`OpKey`].
    fn op_key(&self) -> OpKey {
        OpKey {
            op: self.op_sym(),
            arity: u32::try_from(self.children().len()).expect("arity exceeds u32::MAX"),
        }
    }

    /// Builds an e-node from an interned operator token and child ids.
    ///
    /// # Errors
    ///
    /// Returns a message when `op` is unknown for this language or the
    /// arity does not fit.
    fn from_op(op: Symbol, children: Vec<Id>) -> Result<Self, String>;

    /// True for e-nodes without children.
    fn is_leaf(&self) -> bool {
        self.children().is_empty()
    }

    /// Calls `f` on each child.
    fn for_each(&self, f: impl FnMut(Id)) {
        self.children().iter().copied().for_each(f);
    }

    /// Returns a copy with every child mapped through `f`.
    fn map_children(&self, mut f: impl FnMut(Id) -> Id) -> Self {
        let mut out = self.clone();
        for c in out.children_mut() {
            *c = f(*c);
        }
        out
    }
}

/// A flattened expression: nodes stored in a `Vec` where children always
/// precede parents and the *last* node is the root. Sharing is allowed
/// (two parents may point at the same index), so a `RecExpr` can represent
/// a DAG, not just a tree.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RecExpr<L> {
    nodes: Vec<L>,
}

impl<L> Default for RecExpr<L> {
    fn default() -> Self {
        RecExpr { nodes: Vec::new() }
    }
}

impl<L: Language> RecExpr<L> {
    /// Creates an empty expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a node whose children must already be present, returning its
    /// index as an [`Id`].
    ///
    /// # Panics
    ///
    /// Panics if a child id is out of range (i.e. refers to a node that has
    /// not been added yet).
    pub fn add(&mut self, node: L) -> Id {
        for &c in node.children() {
            assert!(
                usize::from(c) < self.nodes.len(),
                "child {c} out of range when adding node"
            );
        }
        self.nodes.push(node);
        Id::from(self.nodes.len() - 1)
    }

    /// The nodes in child-first order.
    pub fn as_ref(&self) -> &[L] {
        &self.nodes
    }

    /// Number of nodes (counting shared nodes once).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root node (the last one added).
    ///
    /// # Panics
    ///
    /// Panics on an empty expression.
    pub fn root(&self) -> Id {
        assert!(!self.nodes.is_empty(), "empty RecExpr has no root");
        Id::from(self.nodes.len() - 1)
    }

    /// The node stored at `id`.
    pub fn node(&self, id: Id) -> &L {
        &self.nodes[usize::from(id)]
    }

    /// Tree depth of the expression (leaves at depth 1), computed over the
    /// DAG in one pass.
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            let child_max = node
                .children()
                .iter()
                .map(|&c| depth[usize::from(c)])
                .max()
                .unwrap_or(0);
            depth[i] = 1 + child_max;
        }
        depth.last().copied().unwrap_or(0)
    }

    /// Number of *tree* nodes if sharing were expanded; saturates at
    /// `u64::MAX`. Useful to gauge how much sharing a DAG contains.
    pub fn tree_size(&self) -> u64 {
        let mut size = vec![0u64; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            let mut s: u64 = 1;
            for &c in node.children() {
                s = s.saturating_add(size[usize::from(c)]);
            }
            size[i] = s;
        }
        size.last().copied().unwrap_or(0)
    }
}

impl<L: Language> fmt::Display for RecExpr<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.nodes.is_empty() {
            return write!(f, "()");
        }
        fn go<L: Language>(nodes: &[L], id: Id, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let node = &nodes[usize::from(id)];
            if node.is_leaf() {
                write!(f, "{}", node.op_str())
            } else {
                write!(f, "({}", node.op_str())?;
                for &c in node.children() {
                    write!(f, " ")?;
                    go(nodes, c, f)?;
                }
                write!(f, ")")
            }
        }
        go(&self.nodes, self.root(), f)
    }
}

impl<L: Language> fmt::Debug for RecExpr<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RecExpr[{self}]")
    }
}

/// Error type returned when parsing a [`RecExpr`] from S-expression text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecExprParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the offending token in the input (`None` when the
    /// input ended unexpectedly).
    pub position: Option<usize>,
}

impl RecExprParseError {
    pub(crate) fn new(message: impl Into<String>, position: Option<usize>) -> Self {
        RecExprParseError {
            message: message.into(),
            position,
        }
    }
}

impl fmt::Display for RecExprParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.position {
            Some(p) => write!(f, "rec-expr parse error at byte {p}: {}", self.message),
            None => write!(f, "rec-expr parse error at end of input: {}", self.message),
        }
    }
}

impl std::error::Error for RecExprParseError {}

impl<L: Language> FromStr for RecExpr<L> {
    type Err = RecExprParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut expr = RecExpr::new();
        let mut toks = SexprCursor::new(s);
        parse_into(&mut toks, &mut expr)?;
        if let Some((pos, t)) = toks.peek() {
            return Err(RecExprParseError::new(
                format!("trailing input `{t}`"),
                Some(pos),
            ));
        }
        Ok(expr)
    }
}

/// A token stream over S-expression text: `(`, `)` and atoms, each tagged
/// with its byte offset in the input.
pub(crate) struct SexprCursor {
    toks: Vec<(usize, String)>,
    next: usize,
}

impl SexprCursor {
    pub(crate) fn new(s: &str) -> Self {
        let mut toks = Vec::new();
        let mut cur = String::new();
        let mut cur_start = 0;
        for (pos, c) in s.char_indices() {
            match c {
                '(' | ')' => {
                    if !cur.is_empty() {
                        toks.push((cur_start, std::mem::take(&mut cur)));
                    }
                    toks.push((pos, c.to_string()));
                }
                c if c.is_whitespace() => {
                    if !cur.is_empty() {
                        toks.push((cur_start, std::mem::take(&mut cur)));
                    }
                }
                _ => {
                    if cur.is_empty() {
                        cur_start = pos;
                    }
                    cur.push(c);
                }
            }
        }
        if !cur.is_empty() {
            toks.push((cur_start, cur));
        }
        SexprCursor { toks, next: 0 }
    }

    /// The next token and its byte offset, without consuming it.
    pub(crate) fn peek(&self) -> Option<(usize, &str)> {
        self.toks.get(self.next).map(|(p, t)| (*p, t.as_str()))
    }

    /// Consumes and returns the next token.
    pub(crate) fn take(&mut self) -> Option<(usize, &str)> {
        let t = self.toks.get(self.next).map(|(p, t)| (*p, t.as_str()));
        if t.is_some() {
            self.next += 1;
        }
        t
    }
}

fn parse_into<L: Language>(
    toks: &mut SexprCursor,
    expr: &mut RecExpr<L>,
) -> Result<Id, RecExprParseError> {
    let Some((pos, t)) = toks.take() else {
        return Err(RecExprParseError::new("unexpected end of input", None));
    };
    match t {
        "(" => {
            let Some((op_pos, op)) = toks.take() else {
                return Err(RecExprParseError::new("missing operator after `(`", None));
            };
            if op == "(" || op == ")" {
                return Err(RecExprParseError::new(
                    format!("expected operator after `(`, got `{op}`"),
                    Some(op_pos),
                ));
            }
            let op = Symbol::intern(op);
            let mut children = Vec::new();
            loop {
                match toks.peek() {
                    Some((_, ")")) => {
                        toks.take();
                        break;
                    }
                    Some(_) => children.push(parse_into(toks, expr)?),
                    None => return Err(RecExprParseError::new("unbalanced `(`", Some(pos))),
                }
            }
            let node =
                L::from_op(op, children).map_err(|e| RecExprParseError::new(e, Some(op_pos)))?;
            Ok(expr.add(node))
        }
        ")" => Err(RecExprParseError::new("unexpected `)`", Some(pos))),
        atom => {
            let node = L::from_op(Symbol::intern(atom), Vec::new())
                .map_err(|e| RecExprParseError::new(e, Some(pos)))?;
            Ok(expr.add(node))
        }
    }
}

/// A simple interned-operator language, mirroring egg's `SymbolLang`.
///
/// Useful for tests and generic tooling; the Boolean language used by
/// E-Syn proper lives in `esyn-core`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolLang {
    /// Interned operator name.
    pub op: Symbol,
    /// Child e-class ids.
    pub children: Vec<Id>,
}

impl SymbolLang {
    /// A leaf node with the given operator name.
    pub fn leaf(op: impl Into<Symbol>) -> Self {
        SymbolLang {
            op: op.into(),
            children: Vec::new(),
        }
    }

    /// An interior node.
    pub fn new(op: impl Into<Symbol>, children: Vec<Id>) -> Self {
        SymbolLang {
            op: op.into(),
            children,
        }
    }
}

impl Language for SymbolLang {
    fn matches(&self, other: &Self) -> bool {
        self.op == other.op && self.children.len() == other.children.len()
    }

    fn children(&self) -> &[Id] {
        &self.children
    }

    fn children_mut(&mut self) -> &mut [Id] {
        &mut self.children
    }

    fn op_sym(&self) -> Symbol {
        self.op
    }

    fn from_op(op: Symbol, children: Vec<Id>) -> Result<Self, String> {
        Ok(SymbolLang { op, children })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recexpr_add_and_display() {
        let mut e = RecExpr::<SymbolLang>::new();
        let x = e.add(SymbolLang::leaf("x"));
        let y = e.add(SymbolLang::leaf("y"));
        let _plus = e.add(SymbolLang::new("+", vec![x, y]));
        assert_eq!(e.to_string(), "(+ x y)");
        assert_eq!(e.len(), 3);
        assert_eq!(e.depth(), 2);
    }

    #[test]
    fn recexpr_parse_roundtrip() {
        let src = "(+ (* x y) (* x z))";
        let e: RecExpr<SymbolLang> = src.parse().unwrap();
        assert_eq!(e.to_string(), src);
        assert_eq!(e.len(), 7);
        assert_eq!(e.depth(), 3);
    }

    #[test]
    fn recexpr_sharing_tree_size() {
        let mut e = RecExpr::<SymbolLang>::new();
        let x = e.add(SymbolLang::leaf("x"));
        let mut cur = x;
        // chain of 10 doublings: tree size 2^10 + ... but dag size 11
        for _ in 0..10 {
            cur = e.add(SymbolLang::new("+", vec![cur, cur]));
        }
        assert_eq!(e.len(), 11);
        assert_eq!(e.tree_size(), 2047);
    }

    #[test]
    fn recexpr_parse_errors() {
        assert!("(+ x".parse::<RecExpr<SymbolLang>>().is_err());
        assert!(")".parse::<RecExpr<SymbolLang>>().is_err());
        assert!("".parse::<RecExpr<SymbolLang>>().is_err());
        assert!("x y".parse::<RecExpr<SymbolLang>>().is_err());
    }

    #[test]
    fn parse_errors_carry_token_positions() {
        let err = "(+ x".parse::<RecExpr<SymbolLang>>().unwrap_err();
        assert_eq!(err.position, Some(0), "unbalanced `(` points at the `(`");
        assert!(err.to_string().contains("at byte 0"), "{err}");

        let err = "  )".parse::<RecExpr<SymbolLang>>().unwrap_err();
        assert_eq!(err.position, Some(2));

        let err = "(+ x y) junk".parse::<RecExpr<SymbolLang>>().unwrap_err();
        assert_eq!(err.position, Some(8));
        assert!(err.to_string().contains("junk"), "{err}");

        let err = "".parse::<RecExpr<SymbolLang>>().unwrap_err();
        assert_eq!(err.position, None);
        assert!(err.to_string().contains("end of input"), "{err}");
    }

    #[test]
    #[should_panic(expected = "child")]
    fn recexpr_rejects_forward_children() {
        let mut e = RecExpr::<SymbolLang>::new();
        e.add(SymbolLang::new("+", vec![Id::from(5), Id::from(6)]));
    }

    #[test]
    fn language_helpers() {
        let n = SymbolLang::new("f", vec![Id::from(0), Id::from(1)]);
        assert!(!n.is_leaf());
        let mut seen = Vec::new();
        n.for_each(|c| seen.push(c));
        assert_eq!(seen, vec![Id::from(0), Id::from(1)]);
        let mapped = n.map_children(|c| Id::from(usize::from(c) + 10));
        assert_eq!(mapped.children(), &[Id::from(10), Id::from(11)]);
        assert!(n.matches(&mapped));
        assert!(!n.matches(&SymbolLang::leaf("f")));
    }

    #[test]
    fn op_key_agrees_with_matches() {
        let a = SymbolLang::new("f", vec![Id::from(0), Id::from(1)]);
        let b = SymbolLang::new("f", vec![Id::from(2), Id::from(3)]);
        let c = SymbolLang::leaf("f");
        let d = SymbolLang::leaf("g");
        for (x, y) in [(&a, &b), (&a, &c), (&c, &d), (&b, &d)] {
            assert_eq!(x.matches(y), x.op_key() == y.op_key());
        }
        assert_eq!(a.op_key().arity, 2);
        assert_eq!(a.op_key().op, Symbol::intern("f"));
    }
}
