//! Bottom-up optimal extraction with monotone cost functions.
//!
//! This is the "vanilla extractor" of the paper's Figure 5: it chooses,
//! per e-class, the e-node minimizing a local cost (AST size or depth) and
//! is provably optimal only for monotone, local cost functions. The
//! pool-based extraction that supports *arbitrary* cost models (the paper's
//! contribution) is built on top of the internals exposed here, in
//! `esyn-core`.

use crate::analysis::Analysis;
use crate::egraph::EGraph;
use crate::fxhash::FxHashMap;
use crate::language::{Id, Language, RecExpr};
use std::fmt::Debug;

/// A local cost function over e-nodes.
///
/// `cost` receives the e-node and a callback providing the (already
/// minimal) cost of each child e-class. Extraction is optimal when the
/// function is monotone: the cost must not decrease when a child's cost
/// increases.
pub trait CostFunction<L: Language> {
    /// Total cost type; `f64` or `usize` in practice.
    type Cost: PartialOrd + Clone + Debug;

    /// Cost of `enode` given its children's costs.
    fn cost<C>(&mut self, enode: &L, costs: C) -> Self::Cost
    where
        C: FnMut(Id) -> Self::Cost;
}

/// Counts AST nodes (every e-node costs 1 plus its children).
#[derive(Clone, Copy, Debug, Default)]
pub struct AstSize;

impl<L: Language> CostFunction<L> for AstSize {
    type Cost = usize;

    fn cost<C>(&mut self, enode: &L, mut costs: C) -> usize
    where
        C: FnMut(Id) -> usize,
    {
        let mut total = 1usize;
        for &c in enode.children() {
            total = total.saturating_add(costs(c));
        }
        total
    }
}

/// Measures AST depth (leaves cost 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct AstDepth;

impl<L: Language> CostFunction<L> for AstDepth {
    type Cost = usize;

    fn cost<C>(&mut self, enode: &L, mut costs: C) -> usize
    where
        C: FnMut(Id) -> usize,
    {
        1 + enode
            .children()
            .iter()
            .map(|&c| costs(c))
            .max()
            .unwrap_or(0)
    }
}

/// Computes, for every e-class, the cheapest representable term under a
/// [`CostFunction`], then materializes best terms on demand.
pub struct Extractor<'a, L: Language, N: Analysis<L>, CF: CostFunction<L>> {
    egraph: &'a EGraph<L, N>,
    cost_fn: CF,
    costs: FxHashMap<Id, (CF::Cost, L)>,
}

impl<'a, L: Language, N: Analysis<L>, CF: CostFunction<L>> Extractor<'a, L, N, CF> {
    /// Builds the extractor and runs the cost fixpoint over the e-graph.
    pub fn new(egraph: &'a EGraph<L, N>, cost_fn: CF) -> Self {
        let mut ext = Extractor {
            egraph,
            cost_fn,
            costs: FxHashMap::default(),
        };
        ext.run_fixpoint();
        ext
    }

    fn run_fixpoint(&mut self) {
        let mut changed = true;
        while changed {
            changed = false;
            for class in self.egraph.classes() {
                for node in class.nodes() {
                    let Some(new_cost) = self.node_cost(node) else {
                        continue;
                    };
                    match self.costs.get(&class.id) {
                        Some((old, _)) if !cost_lt(&new_cost, old) => {}
                        _ => {
                            self.costs.insert(class.id, (new_cost, node.clone()));
                            changed = true;
                        }
                    }
                }
            }
        }
    }

    fn node_cost(&mut self, node: &L) -> Option<CF::Cost> {
        // All children must already have a cost.
        for &c in node.children() {
            let c = self.egraph.find(c);
            if !self.costs.contains_key(&c) {
                return None;
            }
        }
        let egraph = self.egraph;
        let costs = &self.costs;
        Some(
            self.cost_fn
                .cost(node, |id| costs[&egraph.find(id)].0.clone()),
        )
    }

    /// The cheapest cost of e-class `id`, if one has been found.
    pub fn cost_of(&self, id: Id) -> Option<CF::Cost> {
        self.costs
            .get(&self.egraph.find(id))
            .map(|(c, _)| c.clone())
    }

    /// The chosen best e-node of e-class `id`.
    pub fn best_node(&self, id: Id) -> Option<&L> {
        self.costs.get(&self.egraph.find(id)).map(|(_, n)| n)
    }

    /// Extracts the cheapest term rooted at `root`, sharing repeated
    /// sub-terms in the returned [`RecExpr`].
    ///
    /// Returns `None` when `root`'s class has no extractable term (only
    /// possible on a malformed / mid-rebuild e-graph).
    pub fn find_best(&self, root: Id) -> Option<(CF::Cost, RecExpr<L>)> {
        let root = self.egraph.find(root);
        let root_cost = self.cost_of(root)?;
        let mut expr = RecExpr::new();
        let mut built: FxHashMap<Id, Id> = FxHashMap::default(); // class -> expr id

        // Iterative post-order over chosen nodes.
        enum Frame {
            Visit(Id),
            Emit(Id),
        }
        let mut stack = vec![Frame::Visit(root)];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Visit(class) => {
                    let class = self.egraph.find(class);
                    if built.contains_key(&class) {
                        continue;
                    }
                    let node = self.best_node(class)?;
                    stack.push(Frame::Emit(class));
                    for &c in node.children() {
                        stack.push(Frame::Visit(c));
                    }
                }
                Frame::Emit(class) => {
                    if built.contains_key(&class) {
                        continue;
                    }
                    let node = self.best_node(class)?.clone();
                    let remapped = node.map_children(|c| built[&self.egraph.find(c)]);
                    let id = expr.add(remapped);
                    built.insert(class, id);
                }
            }
        }
        Some((root_cost, expr))
    }
}

fn cost_lt<C: PartialOrd + Debug>(a: &C, b: &C) -> bool {
    a.partial_cmp(b)
        .unwrap_or_else(|| panic!("incomparable costs: {a:?} vs {b:?}"))
        .is_lt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::SymbolLang;

    #[test]
    fn ast_size_picks_smaller_form() {
        let mut g = EGraph::<SymbolLang>::new();
        let big: RecExpr<SymbolLang> = "(+ (* x one) zero)".parse().unwrap();
        let small: RecExpr<SymbolLang> = "x".parse().unwrap();
        let a = g.add_expr(&big);
        let b = g.add_expr(&small);
        g.union(a, b);
        g.rebuild();
        let ext = Extractor::new(&g, AstSize);
        let (cost, best) = ext.find_best(a).unwrap();
        assert_eq!(cost, 1);
        assert_eq!(best.to_string(), "x");
    }

    #[test]
    fn ast_depth_prefers_balanced() {
        let mut g = EGraph::<SymbolLang>::new();
        let chain: RecExpr<SymbolLang> = "(+ (+ (+ a b) c) d)".parse().unwrap();
        let tree: RecExpr<SymbolLang> = "(+ (+ a b) (+ c d))".parse().unwrap();
        let a = g.add_expr(&chain);
        let b = g.add_expr(&tree);
        g.union(a, b);
        g.rebuild();
        let ext = Extractor::new(&g, AstDepth);
        let (depth, best) = ext.find_best(a).unwrap();
        assert_eq!(depth, 3);
        assert_eq!(best.to_string(), "(+ (+ a b) (+ c d))");
    }

    #[test]
    fn extraction_shares_subterms() {
        let mut g = EGraph::<SymbolLang>::new();
        // (* (+ x y) (+ x y)) — the two children are one e-class.
        let e: RecExpr<SymbolLang> = "(* (+ x y) (+ x y))".parse().unwrap();
        let id = g.add_expr(&e);
        g.rebuild();
        let ext = Extractor::new(&g, AstSize);
        let (cost, best) = ext.find_best(id).unwrap();
        // AstSize counts per reference: (+ x y)=3, twice + 1 = 7.
        assert_eq!(cost, 7);
        // ...but the RecExpr shares: x, y, +, * = 4 distinct nodes.
        assert_eq!(best.len(), 4);
    }

    #[test]
    fn cyclic_class_still_extractable() {
        // x = f(x) creates a cycle; extraction must find the leaf way out.
        let mut g = EGraph::<SymbolLang>::new();
        let x = g.add(SymbolLang::leaf("x"));
        let fx = g.add(SymbolLang::new("f", vec![x]));
        g.union(x, fx);
        g.rebuild();
        let ext = Extractor::new(&g, AstSize);
        let (cost, best) = ext.find_best(fx).unwrap();
        assert_eq!(cost, 1);
        assert_eq!(best.to_string(), "x");
    }

    #[test]
    fn cost_of_and_best_node_agree() {
        let mut g = EGraph::<SymbolLang>::new();
        let e: RecExpr<SymbolLang> = "(+ a b)".parse().unwrap();
        let id = g.add_expr(&e);
        g.rebuild();
        let ext = Extractor::new(&g, AstSize);
        assert_eq!(ext.cost_of(id), Some(3));
        assert_eq!(ext.best_node(id).unwrap().op_str(), "+");
    }
}
