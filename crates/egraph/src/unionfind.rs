//! Union-find over e-class ids with path compression.

use crate::language::Id;

/// A disjoint-set forest over dense [`Id`]s.
///
/// Union by *id order*: the smaller canonical id wins, which keeps canonical
/// ids stable-ish and makes behaviour deterministic.
#[derive(Clone, Debug, Default)]
pub struct UnionFind {
    parents: Vec<Id>,
}

impl UnionFind {
    /// Creates an empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of ids ever issued.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// True if no ids have been issued.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// Issues a fresh id in its own singleton set.
    pub fn make_set(&mut self) -> Id {
        let id = Id::from(self.parents.len());
        self.parents.push(id);
        id
    }

    /// Canonical representative of `id`, without path compression.
    pub fn find(&self, mut id: Id) -> Id {
        while self.parents[usize::from(id)] != id {
            id = self.parents[usize::from(id)];
        }
        id
    }

    /// Canonical representative of `id`, compressing paths along the way.
    pub fn find_mut(&mut self, mut id: Id) -> Id {
        let mut root = id;
        while self.parents[usize::from(root)] != root {
            root = self.parents[usize::from(root)];
        }
        while self.parents[usize::from(id)] != id {
            let next = self.parents[usize::from(id)];
            self.parents[usize::from(id)] = root;
            id = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns the canonical id of the
    /// merged set (the smaller of the two roots).
    pub fn union(&mut self, a: Id, b: Id) -> Id {
        self.union_pair(a, b).0
    }

    /// Merges the sets of `a` and `b`; returns `(kept, merged)` — the
    /// surviving canonical root (the smaller of the two) and the root that
    /// was absorbed into it. When the sets were already one, both sides
    /// are the shared root. Callers that need to know *which* side lost
    /// (e.g. [`crate::EGraph::union`] moving the absorbed class's nodes)
    /// read it straight from the return instead of re-deriving it.
    pub fn union_pair(&mut self, a: Id, b: Id) -> (Id, Id) {
        let ra = self.find_mut(a);
        let rb = self.find_mut(b);
        if ra == rb {
            return (ra, ra);
        }
        let (keep, merge) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parents[usize::from(merge)] = keep;
        (keep, merge)
    }

    /// True if `a` and `b` are in the same set.
    pub fn same(&self, a: Id, b: Id) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_distinct() {
        let mut uf = UnionFind::new();
        let a = uf.make_set();
        let b = uf.make_set();
        assert_ne!(uf.find(a), uf.find(b));
        assert!(!uf.same(a, b));
        assert_eq!(uf.len(), 2);
    }

    #[test]
    fn union_prefers_smaller_root() {
        let mut uf = UnionFind::new();
        let ids: Vec<Id> = (0..10).map(|_| uf.make_set()).collect();
        assert_eq!(uf.union(ids[3], ids[7]), ids[3]);
        assert_eq!(uf.union(ids[7], ids[1]), ids[1]);
        assert_eq!(uf.find(ids[3]), ids[1]);
        assert!(uf.same(ids[1], ids[7]));
        assert!(!uf.same(ids[0], ids[1]));
    }

    #[test]
    fn path_compression_flattens() {
        let mut uf = UnionFind::new();
        let ids: Vec<Id> = (0..100).map(|_| uf.make_set()).collect();
        for w in ids.windows(2) {
            uf.union(w[0], w[1]);
        }
        for &id in &ids {
            assert_eq!(uf.find_mut(id), ids[0]);
        }
        // After compression every parent points at the root directly.
        for &id in &ids {
            assert_eq!(uf.parents[usize::from(id)], ids[0]);
        }
    }

    #[test]
    fn union_pair_reports_absorbed_root() {
        let mut uf = UnionFind::new();
        let a = uf.make_set();
        let b = uf.make_set();
        assert_eq!(uf.union_pair(b, a), (a, b));
        // Already merged: both sides are the shared root.
        assert_eq!(uf.union_pair(a, b), (a, a));
    }

    #[test]
    fn union_idempotent() {
        let mut uf = UnionFind::new();
        let a = uf.make_set();
        let b = uf.make_set();
        let r1 = uf.union(a, b);
        let r2 = uf.union(a, b);
        assert_eq!(r1, r2);
    }
}
