#!/usr/bin/env bash
# Local CI entry point — the exact checks .github/workflows/ci.yml runs.
# Everything is offline: the workspace has no registry dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --benches --examples"
cargo build --benches --examples

echo "==> cargo test -q"
cargo test -q

echo "==> smoke-run micro bench (ESYN_BENCH_FAST=1)"
ESYN_BENCH_FAST=1 cargo bench -q -p esyn-bench --bench micro >/dev/null

echo "ci.sh: all checks passed"
