#!/usr/bin/env bash
# Local CI entry point — the exact checks .github/workflows/ci.yml runs.
# Everything is offline: the workspace has no registry dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --benches --examples"
cargo build --benches --examples

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q (ESYN_THREADS=1, exact serial path)"
# The parallel subsystem guarantees bit-identical results at any thread
# count; running the suite again fully serialised keeps the ESYN_THREADS
# override and the serial fallback from rotting.
ESYN_THREADS=1 cargo test -q

echo "==> smoke-run micro bench (ESYN_BENCH_FAST=1)"
ESYN_BENCH_FAST=1 cargo bench -q -p esyn-bench --bench micro >/dev/null

echo "==> smoke-run parallel bench (ESYN_BENCH_FAST=1)"
ESYN_BENCH_FAST=1 cargo bench -q -p esyn-bench --bench parallel >/dev/null

echo "==> smoke-run saturation bench (ESYN_BENCH_FAST=1)"
ESYN_BENCH_FAST=1 cargo bench -q -p esyn-bench --bench saturation >/dev/null

echo "==> smoke-run saturation bench (ESYN_BENCH_FAST=1, ESYN_THREADS=1)"
# The bench asserts its Fixed{1,2,...} thread sweep is bit-identical and
# additionally runs a Parallelism::Auto saturation; this second pass
# drives that Auto run through the ESYN_THREADS override so the
# env-resolution path of the Runner's parallel search stays covered.
ESYN_BENCH_FAST=1 ESYN_THREADS=1 cargo bench -q -p esyn-bench --bench saturation >/dev/null

echo "==> smoke-run extraction-gym bench (ESYN_BENCH_FAST=1)"
# Races every esyn-extract engine on two small registry circuits and
# asserts each result passes the shared validator.
ESYN_BENCH_FAST=1 cargo bench -q -p esyn-bench --bench gym >/dev/null

echo "==> smoke-run extraction-gym bench (ESYN_BENCH_FAST=1, ESYN_THREADS=1)"
ESYN_BENCH_FAST=1 ESYN_THREADS=1 cargo bench -q -p esyn-bench --bench gym >/dev/null

echo "==> smoke-run pareto bench (ESYN_BENCH_FAST=1)"
# Races every engine under the area x depth objective pair on two small
# registry circuits; asserts the frontier weakly dominates every point
# and that the race is bit-identical at Fixed{1,2,4} threads.
ESYN_BENCH_FAST=1 cargo bench -q -p esyn-bench --bench pareto >/dev/null

echo "==> smoke-run pareto bench (ESYN_BENCH_FAST=1, ESYN_THREADS=1)"
ESYN_BENCH_FAST=1 ESYN_THREADS=1 cargo bench -q -p esyn-bench --bench pareto >/dev/null

echo "==> smoke-run serve bench (ESYN_BENCH_FAST=1)"
# Concurrent TCP clients against an in-process server; asserts every
# warm-pass job is a cache hit, saturated-tier reuse is byte-identical
# to cold runs, cache memory stays within the byte budget with
# deterministic eviction, and the cap-2 queue rejects under flood.
ESYN_BENCH_FAST=1 cargo bench -q -p esyn-bench --bench serve >/dev/null

echo "==> smoke-run serve bench (ESYN_BENCH_FAST=1, ESYN_THREADS=1)"
ESYN_BENCH_FAST=1 ESYN_THREADS=1 cargo bench -q -p esyn-bench --bench serve >/dev/null

echo "==> esyn serve stdio smoke"
# Pipe a ping, a tiny submit and a stats query through the server's
# stdin/stdout mode; EOF triggers the graceful drain, so the pipeline
# exits only after the result line has been delivered.
printf '%s\n%s\n%s\n' \
    '{"op":"ping"}' \
    '{"op":"submit","id":"smoke","format":"name","circuit":"3_3","config":{"iter_limit":3,"node_limit":2000,"samples":6}}' \
    '{"op":"stats"}' \
    | cargo run --release --bin esyn -- serve --stdio --train tiny \
        --cache-bytes 4m --sat-cache-bytes 16m \
    | grep -q '"reply":"result","id":"smoke"'

echo "==> esyn gym smoke (small registry slice)"
# The CLI gym re-checks every engine and fails if any exact engine comes
# out worse than the best greedy incumbent.
cargo run --release --bin esyn -- gym adder qdiv >/dev/null

echo "==> esyn gym smoke (ESYN_THREADS=1)"
ESYN_THREADS=1 cargo run --release --bin esyn -- gym adder qdiv >/dev/null

echo "==> esyn gym --cost smoke (techmap objective)"
# Same race under the technology-aware cost model from esyn-objective.
cargo run --release --bin esyn -- gym --cost techmap adder qdiv >/dev/null

echo "==> esyn pareto smoke (bit-identical across thread counts)"
# The pareto command prints no wall-clock, so its whole output must be
# byte-identical whatever ESYN_THREADS says.
cargo run --release --bin esyn -- pareto adder qdiv > target/pareto-smoke-default.txt
ESYN_THREADS=1 cargo run --release --bin esyn -- pareto adder qdiv > target/pareto-smoke-serial.txt
cmp target/pareto-smoke-default.txt target/pareto-smoke-serial.txt

echo "ci.sh: all checks passed"
